(* Tests for the twelve-application suite. *)

open Ctam_ir
open Ctam_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_twelve () =
  check_int "twelve applications" 12 (List.length Suite.all);
  let names = List.map (fun k -> k.Kernel.name) Suite.all in
  Alcotest.(check (list string))
    "paper order"
    [
      "applu"; "galgel"; "equake"; "cg"; "sp"; "bodytrack"; "facesim";
      "freqmine"; "namd"; "povray"; "mesa"; "h264";
    ]
    names

let test_all_build_and_validate () =
  (* Program.make validates rank/declaration consistency; building at a
     reduced size must succeed for every kernel. *)
  List.iter
    (fun k ->
      let p = Kernel.small_program k in
      check_bool (k.Kernel.name ^ " nonempty")
        true
        (Program.data_bytes p > 0 && Program.parallel_nests p <> []))
    Suite.all

let test_in_bounds () =
  (* Every reference of every kernel stays inside its array for every
     iteration (at reduced size, by exhaustive check). *)
  List.iter
    (fun k ->
      let p = Kernel.small_program k in
      List.iter
        (fun nest ->
          let refs = Nest.refs nest in
          Ctam_poly.Domain.iter
            (fun iv ->
              List.iter
                (fun r ->
                  let arr = Program.find_array p r.Reference.array_name in
                  if not (Reference.in_bounds r arr iv) then
                    Alcotest.failf "%s: %s out of bounds" k.Kernel.name
                      r.Reference.array_name)
                refs)
            nest.Nest.domain)
        p.Program.nests)
    Suite.all

let test_kinds () =
  let seqs =
    List.filter (fun k -> k.Kernel.kind = Kernel.Sequential_app) Suite.all
  in
  check_int "four sequential apps" 4 (List.length seqs);
  Alcotest.(check (list string))
    "sequential names"
    [ "namd"; "povray"; "mesa"; "h264" ]
    (List.map (fun k -> k.Kernel.name) seqs)

let test_dependence_mix () =
  (* The paper: a minority of parallel loops carry dependences (sp and
     facesim here). *)
  let carries k =
    let p = Kernel.small_program k in
    List.exists Ctam_deps.Dep_test.nest_may_carry_deps
      (Program.parallel_nests p)
  in
  check_bool "sp carries" true (carries (Suite.by_name "sp"));
  check_bool "facesim carries" true (carries (Suite.by_name "facesim"));
  check_bool "galgel free" false (carries (Suite.by_name "galgel"));
  check_bool "cg free" false (carries (Suite.by_name "cg"));
  let n_dep = List.length (List.filter carries Suite.all) in
  check_int "two dependence-carrying kernels" 2 n_dep

let test_size_parameter () =
  let small = Kernel.program ~size:64 Suite.galgel in
  let big = Kernel.program ~size:128 Suite.galgel in
  check_bool "size scales data" true
    (Program.data_bytes big > Program.data_bytes small)

let test_by_name () =
  check_bool "case insensitive" true
    ((Suite.by_name "GALGEL").Kernel.name = "galgel");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Suite.by_name "doom"))

let test_builder_helpers () =
  let d = 2 in
  let a = Builder.aff d [ (2, 0); (-1, 1) ] 5 in
  check_int "aff eval" (2 * 3 - 4 + 5) (Ctam_poly.Affine.eval a [| 3; 4 |]);
  let r = Builder.read "X" [ Builder.v d 0; Builder.c d 7 ] in
  Alcotest.(check (array int)) "read target" [| 3; 7 |] (Reference.target r [| 3; 0 |]);
  check_bool "write kind" true (Reference.is_write (Builder.write "X" [ Builder.v d 0; Builder.v d 1 ]))

let () =
  Alcotest.run "workloads"
    [
      ( "suite",
        [
          Alcotest.test_case "twelve" `Quick test_twelve;
          Alcotest.test_case "build + validate" `Quick test_all_build_and_validate;
          Alcotest.test_case "in bounds" `Slow test_in_bounds;
          Alcotest.test_case "kinds" `Quick test_kinds;
          Alcotest.test_case "dependence mix" `Quick test_dependence_mix;
          Alcotest.test_case "size parameter" `Quick test_size_parameter;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
      ( "builder",
        [ Alcotest.test_case "helpers" `Quick test_builder_helpers ] );
    ]
