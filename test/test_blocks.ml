(* Tests for bitsets, data-block maps, tagging and iteration groups. *)

open Ctam_poly
open Ctam_ir
open Ctam_blocks

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Bitset --------------------------------------------------------- *)

let test_bitset_basics () =
  let b = Bitset.of_list 100 [ 0; 63; 99 ] in
  check_int "count" 3 (Bitset.count b);
  check_bool "get 63" true (Bitset.get b 63);
  check_bool "get 64" false (Bitset.get b 64);
  let b2 = Bitset.set b 64 in
  check_bool "immutable" false (Bitset.get b 64);
  check_bool "set" true (Bitset.get b2 64);
  check_int "clear" 2 (Bitset.count (Bitset.clear b 63))

let test_bitset_ops () =
  let a = Bitset.of_list 128 [ 1; 2; 3; 70 ] in
  let b = Bitset.of_list 128 [ 2; 3; 4; 80 ] in
  check_int "dot" 2 (Bitset.dot a b);
  check_int "union" 6 (Bitset.count (Bitset.union a b));
  check_int "inter" 2 (Bitset.count (Bitset.inter a b));
  check_int "diff" 2 (Bitset.count (Bitset.diff a b));
  check_int "hamming" 4 (Bitset.hamming a b);
  check_bool "subset" true (Bitset.subset (Bitset.inter a b) a);
  check_bool "not subset" false (Bitset.subset a b)

let test_bitset_string () =
  let b = Bitset.of_list 6 [ 0; 1; 4 ] in
  Alcotest.(check string) "paper notation" "110010" (Bitset.to_string b);
  Alcotest.(check (list int)) "to_list" [ 0; 1; 4 ] (Bitset.to_list b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: bit index out of range")
    (fun () -> ignore (Bitset.get b 10))

let prop_dot_symmetric =
  let arb =
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 30) (int_range 0 99))
        (list_of_size (Gen.int_range 0 30) (int_range 0 99)))
  in
  QCheck.Test.make ~name:"dot symmetric, bounded by counts" ~count:200 arb
    (fun (xs, ys) ->
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      Bitset.dot a b = Bitset.dot b a
      && Bitset.dot a b <= min (Bitset.count a) (Bitset.count b))

let prop_union_count =
  let arb =
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 30) (int_range 0 99))
        (list_of_size (Gen.int_range 0 30) (int_range 0 99)))
  in
  QCheck.Test.make ~name:"inclusion-exclusion" ~count:200 arb
    (fun (xs, ys) ->
      let a = Bitset.of_list 100 xs and b = Bitset.of_list 100 ys in
      Bitset.count (Bitset.union a b) + Bitset.dot a b
      = Bitset.count a + Bitset.count b)

(* of_list builds its one array in place and iter walks words with the
   low-bit tricks; both must agree with the naive fold/per-bit
   definitions, across word boundaries (width > 63). *)
let prop_of_list_equals_fold_of_set =
  let arb =
    QCheck.(
      pair (int_range 1 200)
        (list_of_size (Gen.int_range 0 40) (int_range 0 199)))
  in
  QCheck.Test.make ~name:"of_list = fold of set" ~count:200 arb
    (fun (n, js) ->
      let js = List.filter (fun j -> j < n) js in
      let direct = Bitset.of_list n js in
      let folded =
        List.fold_left (fun b j -> Bitset.set b j) (Bitset.create n) js
      in
      Bitset.equal direct folded && Bitset.compare direct folded = 0
      && Bitset.hash direct = Bitset.hash folded)

let prop_iter_equals_naive_walk =
  let arb =
    QCheck.(
      pair (int_range 1 200)
        (list_of_size (Gen.int_range 0 40) (int_range 0 199)))
  in
  QCheck.Test.make ~name:"iter/to_list = naive per-bit walk" ~count:200 arb
    (fun (n, js) ->
      let js = List.filter (fun j -> j < n) js in
      let b = Bitset.of_list n js in
      let naive = ref [] in
      for j = n - 1 downto 0 do
        if Bitset.get b j then naive := j :: !naive
      done;
      let via_iter = ref [] in
      Bitset.iter (fun j -> via_iter := j :: !via_iter) b;
      List.rev !via_iter = !naive && Bitset.to_list b = !naive)

let test_bitset_singleton () =
  (* bit 127 lives in the second word *)
  let s = Bitset.singleton 130 127 in
  check_int "count" 1 (Bitset.count s);
  check_bool "the bit" true (Bitset.get s 127);
  check_bool "equals of_list" true
    (Bitset.equal s (Bitset.of_list 130 [ 127 ]));
  Alcotest.check_raises "oob singleton"
    (Invalid_argument "Bitset: bit index out of range") (fun () ->
      ignore (Bitset.singleton 10 10));
  Alcotest.check_raises "of_list oob"
    (Invalid_argument "Bitset: bit index out of range") (fun () ->
      ignore (Bitset.of_list 10 [ 3; 11 ]))

(* --- Block_map ------------------------------------------------------ *)

let two_arrays =
  Program.make ~name:"p"
    ~arrays:
      [
        Array_decl.make ~name:"A" ~dims:[| 100 |] ~elem_size:8;
        Array_decl.make ~name:"B" ~dims:[| 300 |] ~elem_size:8;
      ]
    ~nests:
      [
        Nest.make ~name:"n" ~index_names:[| "i" |]
          ~domain:(Domain.box [| (0, 99) |])
          ~body:
            [
              Stmt.assign
                (Reference.make ~array_name:"A" ~subs:[| Affine.var 1 0 |]
                   ~kind:Reference.Write)
                (Expr.load
                   (Reference.make ~array_name:"B"
                      ~subs:[| Affine.make [| 3 |] 0 |]
                      ~kind:Reference.Read));
            ]
          ~parallel:true;
      ]

let test_block_map () =
  let bm, layout = Block_map.for_program ~block_size:256 ~line:64 two_arrays in
  check_int "block size" 256 (Block_map.block_size bm);
  let a_lo, a_hi = Block_map.blocks_of_array bm "A" in
  check_int "A first block" 0 a_lo;
  check_int "A last block" 3 a_hi;
  let b_lo, _ = Block_map.blocks_of_array bm "B" in
  check_int "B starts new block" 4 b_lo;
  check_int "B base aligned" 0 (Layout.base layout "B" mod 256);
  check_int "addr to block" 4
    (Block_map.block_of_addr bm (Layout.base layout "B"));
  Alcotest.check_raises "oob addr"
    (Invalid_argument "Block_map.block_of_addr: address out of range")
    (fun () -> ignore (Block_map.block_of_addr bm (-1)))

let test_block_never_crosses_arrays () =
  let bm, layout = Block_map.for_program ~block_size:2048 ~line:64 two_arrays in
  List.iter
    (fun d ->
      let name = d.Array_decl.name in
      let lo, hi = Block_map.blocks_of_array bm name in
      List.iter
        (fun d' ->
          if d'.Array_decl.name <> name then begin
            let lo', hi' = Block_map.blocks_of_array bm d'.Array_decl.name in
            check_bool "disjoint block ranges" true (hi < lo' || hi' < lo)
          end)
        (Layout.arrays layout))
    (Layout.arrays layout)

(* --- Tags / Iter_group ---------------------------------------------- *)

(* The paper's Figure 5 loop: B[j] = B[j] + B[2k+j] + B[j-2k], with
   m = 12k so there are 12 data blocks: iterations fall into 8 groups
   with the tags of Figure 10(a). *)
let fig5_program k =
  let m = 12 * k in
  let d = 1 in
  let j = Affine.var d 0 in
  let b sub =
    Reference.make ~array_name:"B" ~subs:[| sub |] ~kind:Reference.Read
  in
  let wr = Reference.make ~array_name:"B" ~subs:[| j |] ~kind:Reference.Write in
  let nest =
    Nest.make ~name:"fig5" ~index_names:[| "j" |]
      ~domain:(Domain.box [| (2 * k, m - (2 * k) - 1) |])
      ~body:
        [
          Stmt.assign wr
            (Expr.add
               (Expr.add (Expr.load (b j))
                  (Expr.load (b (Affine.add_const (2 * k) j))))
               (Expr.load (b (Affine.add_const (-2 * k) j))));
        ]
      ~parallel:true
  in
  Program.make ~name:"fig5"
    ~arrays:[ Array_decl.make ~name:"B" ~dims:[| m |] ~elem_size:1 ]
    ~nests:[ nest ]

let test_fig5_groups () =
  let k = 16 in
  let p = fig5_program k in
  let nest = List.hd p.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:k ~line:8 p in
  check_int "12 blocks" 12 (Block_map.num_blocks bm);
  let g = Tags.group nest bm in
  check_int "8 groups" 8 (Array.length g.Tags.groups);
  Array.iter
    (fun grp -> check_int "k iterations each" k (Iter_group.size grp))
    g.Tags.groups;
  Alcotest.(check string)
    "first tag (Figure 10a)" "101010000000"
    (Bitset.to_string g.Tags.groups.(0).Iter_group.tag);
  Alcotest.(check string)
    "last tag" "000000010101"
    (Bitset.to_string g.Tags.groups.(7).Iter_group.tag);
  check_int "partition covers nest" (Nest.trip_count nest)
    (Tags.total_iterations g)

let test_tag_of_iteration () =
  let k = 16 in
  let p = fig5_program k in
  let nest = List.hd p.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:k ~line:8 p in
  let tag = Tags.tag_of_iteration bm nest [| 2 * k |] in
  Alcotest.(check string) "iteration tag" "101010000000" (Bitset.to_string tag)

let test_groups_disjoint () =
  let k = 16 in
  let p = fig5_program k in
  let nest = List.hd p.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:k ~line:8 p in
  let g = Tags.group nest bm in
  Array.iteri
    (fun i gi ->
      Array.iteri
        (fun l gj ->
          if i < l then
            check_bool "groups share no iterations" true
              (Iterset.is_empty
                 (Iterset.inter gi.Iter_group.iters gj.Iter_group.iters)))
        g.Tags.groups)
    g.Tags.groups

let test_group_split () =
  let k = 16 in
  let p = fig5_program k in
  let nest = List.hd p.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:k ~line:8 p in
  let g = (Tags.group nest bm).Tags.groups.(0) in
  let a, b = Iter_group.split g in
  check_int "half" (k / 2) (Iter_group.size a);
  check_int "other half" (k / 2) (Iter_group.size b);
  check_bool "same tag" true (Bitset.equal a.Iter_group.tag b.Iter_group.tag);
  check_int "same id" g.Iter_group.id a.Iter_group.id

let test_tile_coalescing () =
  let k = 16 in
  let p = fig5_program k in
  let nest = List.hd p.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:k ~line:8 p in
  (* Tiling with edge k/2 merges pairs of units but tag-equality
     grouping still recovers the 8 natural groups. *)
  let g = Tags.group ~tile:[| k / 2 |] nest bm in
  check_int "still 8 groups" 8 (Array.length g.Tags.groups);
  let gc = Tags.group_capped ~max_groups:4 nest bm in
  check_bool "cap respected" true (Array.length gc.Tags.groups <= 4);
  check_int "iterations preserved" (Nest.trip_count nest)
    (Tags.total_iterations gc)

(* --- Block_size ----------------------------------------------------- *)

let test_block_size_rule () =
  let k = 64 in
  let p = fig5_program k in
  let nest = List.hd p.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:64 ~line:8 p in
  check_int "max footprint" (3 * 64) (Block_size.max_group_footprint nest bm);
  let bs, _ =
    Block_size.choose
      ~candidates:[ 32; 64; 128 ]
      ~l1_capacity:(3 * 64) ~line:8 nest p
  in
  check_int "chosen size" 64 bs;
  let bs2, _ =
    Block_size.choose
      ~candidates:[ 32; 64; 128 ]
      ~l1_capacity:100_000 ~line:8 nest p
  in
  check_int "largest fits" 128 bs2

let prop_grouping_partitions =
  QCheck.Test.make ~name:"groups partition the domain" ~count:25
    QCheck.(int_range 8 40)
    (fun n ->
      let d = 2 in
      let i = Affine.var d 0 and j = Affine.var d 1 in
      let wr =
        Reference.make ~array_name:"A" ~subs:[| i; j |] ~kind:Reference.Write
      in
      let rd =
        Reference.make ~array_name:"A"
          ~subs:[| Affine.add_const 1 i; j |]
          ~kind:Reference.Read
      in
      let nest =
        Nest.make ~name:"q" ~index_names:[| "i"; "j" |]
          ~domain:(Domain.box [| (0, n - 2); (0, n - 1) |])
          ~body:[ Stmt.assign wr (Expr.load rd) ]
          ~parallel:true
      in
      let p =
        Program.make ~name:"q"
          ~arrays:[ Array_decl.make ~name:"A" ~dims:[| n; n |] ~elem_size:8 ]
          ~nests:[ nest ]
      in
      let bm, _ = Block_map.for_program ~block_size:128 ~line:64 p in
      let g = Tags.group nest bm in
      Tags.total_iterations g = Nest.trip_count nest)

let () =
  Alcotest.run "blocks"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "ops" `Quick test_bitset_ops;
          Alcotest.test_case "string" `Quick test_bitset_string;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "singleton" `Quick test_bitset_singleton;
          QCheck_alcotest.to_alcotest prop_dot_symmetric;
          QCheck_alcotest.to_alcotest prop_union_count;
          QCheck_alcotest.to_alcotest prop_of_list_equals_fold_of_set;
          QCheck_alcotest.to_alcotest prop_iter_equals_naive_walk;
        ] );
      ( "block_map",
        [
          Alcotest.test_case "mapping" `Quick test_block_map;
          Alcotest.test_case "array boundaries" `Quick
            test_block_never_crosses_arrays;
        ] );
      ( "tags",
        [
          Alcotest.test_case "figure 5 groups" `Quick test_fig5_groups;
          Alcotest.test_case "iteration tag" `Quick test_tag_of_iteration;
          Alcotest.test_case "groups disjoint" `Quick test_groups_disjoint;
          Alcotest.test_case "split" `Quick test_group_split;
          Alcotest.test_case "tile coalescing" `Quick test_tile_coalescing;
          QCheck_alcotest.to_alcotest prop_grouping_partitions;
        ] );
      ( "block_size",
        [ Alcotest.test_case "section 4.1 rule" `Quick test_block_size_rule ] );
    ]
