(* Tests for the autotuning subsystem: the search space, the
   persistent result cache, the cost oracle's cycle cap, and the
   determinism / best-not-worse-than-default guarantees of the three
   search strategies. *)

open Ctam_arch
open Ctam_core
open Ctam_tune
module J = Ctam_util.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let machine = Machines.dunnington ~scale:64 ()
let program = Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.cg

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ctam-tune-test-%d-%d" (Unix.getpid ()) !counter)

(* A 3-point space keeps search tests fast: Base collapses to one
   canonical point, Combined keeps both betas. *)
let tiny_axes =
  {
    Space.schemes = [ Mapping.Base; Mapping.Combined ];
    alphas = [ 0.5 ];
    betas = [ 0.25; 0.5 ];
    balances = [ 0.1 ];
    tile_edges = [ None ];
  }

(* --- Space ------------------------------------------------------------ *)

let test_canonical_pins_unused () =
  let p =
    {
      Space.scheme = Mapping.Base;
      alpha = 9.;
      beta = 9.;
      balance = 9.;
      tile_edge = Some 32;
    }
  in
  let c = Space.canonical p in
  let d = Mapping.default_params in
  check_bool "alpha pinned" true (c.Space.alpha = d.Mapping.alpha);
  check_bool "beta pinned" true (c.Space.beta = d.Mapping.beta);
  check_bool "balance pinned" true
    (c.Space.balance = d.Mapping.balance_threshold);
  check_bool "tile pinned" true (c.Space.tile_edge = None);
  (* Combined keeps the weights and balance but not the tile. *)
  let c = Space.canonical { p with Space.scheme = Mapping.Combined } in
  check_bool "alpha kept" true (c.Space.alpha = 9.);
  check_bool "balance kept" true (c.Space.balance = 9.);
  check_bool "tile dropped" true (c.Space.tile_edge = None);
  (* Base+ keeps only the tile. *)
  let c = Space.canonical { p with Space.scheme = Mapping.Base_plus } in
  check_bool "tile kept" true (c.Space.tile_edge = Some 32);
  check_bool "alpha pinned for base+" true (c.Space.alpha = d.Mapping.alpha)

let test_grid_dedup_and_default () =
  let g = Space.grid Space.default_axes in
  check_int "default grid size" 43 (List.length g);
  let seen = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let k = Space.key_fragment p in
      check_bool ("distinct " ^ k) false (Hashtbl.mem seen k);
      Hashtbl.add seen k ())
    g;
  List.iter
    (fun scheme ->
      check_bool
        ("default point in grid for " ^ Space.scheme_id scheme)
        true
        (List.exists
           (Space.equal (Space.canonical (Space.default_point ~scheme ())))
           g))
    Mapping.all_schemes;
  check_int "tiny grid size" 3 (List.length (Space.grid tiny_axes));
  Alcotest.check_raises "empty axis"
    (Invalid_argument "Space.grid: empty axis") (fun () ->
      ignore (Space.grid { tiny_axes with Space.alphas = [] }))

let test_point_json_roundtrip () =
  List.iter
    (fun p ->
      match Space.of_json (Space.to_json p) with
      | Ok q ->
          check_bool
            (Fmt.str "roundtrip %a" Space.pp p)
            true (Space.equal p q)
      | Error e -> Alcotest.fail e)
    (Space.grid Space.default_axes);
  (* Missing members default. *)
  (match Space.of_json (J.Obj [ ("alpha", J.Float 0.75) ]) with
  | Ok p ->
      check_bool "alpha read" true (p.Space.alpha = 0.75);
      check_bool "rest defaulted" true
        (p.Space.scheme = Mapping.Combined
        && p.Space.beta = Mapping.default_params.Mapping.beta)
  | Error e -> Alcotest.fail e);
  match Space.of_json (J.Obj [ ("scheme", J.String "no-such") ]) with
  | Ok _ -> Alcotest.fail "accepted bad scheme"
  | Error _ -> ()

(* --- Eval: the cycle cap ---------------------------------------------- *)

let test_max_cycles_cap () =
  let compiled = Mapping.compile Mapping.Combined ~machine program in
  let full = Mapping.simulate compiled in
  let full_cycles = full.Ctam_cachesim.Stats.cycles in
  check_bool "runs" true (full_cycles > 0);
  let cap = full_cycles / 2 in
  let capped = Mapping.simulate ~max_cycles:cap compiled in
  check_bool "stops early" true
    (capped.Ctam_cachesim.Stats.total_accesses
    < full.Ctam_cachesim.Stats.total_accesses);
  check_bool "at least the cap" true
    (capped.Ctam_cachesim.Stats.cycles >= cap);
  (* A cap beyond the natural length changes nothing. *)
  let loose = Mapping.simulate ~max_cycles:(2 * full_cycles) compiled in
  check_int "loose cap cycles" full_cycles loose.Ctam_cachesim.Stats.cycles;
  check_int "loose cap accesses" full.Ctam_cachesim.Stats.total_accesses
    loose.Ctam_cachesim.Stats.total_accesses;
  (* The oracle reports the truncation. *)
  let o =
    Eval.evaluate ~max_cycles:cap ~machine program
      (Space.default_point ())
  in
  check_bool "outcome capped" true o.Eval.capped;
  let o = Eval.evaluate ~machine program (Space.default_point ()) in
  check_bool "outcome uncapped" false o.Eval.capped;
  check_int "oracle matches simulate" full_cycles o.Eval.cycles

(* --- Cache ------------------------------------------------------------ *)

let test_cache_key_sensitivity () =
  let base = Mapping.default_params in
  let point = Space.default_point () in
  let k ?(version = "v") ?(params = base) ?(m = machine) ?max_cycles
      ?(prog = program) ?(pt = point) () =
    Cache.key ~version ~base_params:params ~machine:m ~max_cycles prog pt
  in
  let k0 = k () in
  check_string "stable" k0 (k ());
  let other_program =
    Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.sp
  in
  List.iter
    (fun (what, k') -> check_bool what true (k' <> k0))
    [
      ("version", k ~version:"w" ());
      ("block size", k ~params:{ base with Mapping.block_size = 1024 } ());
      ("machine", k ~m:(Machines.harpertown ~scale:64 ()) ());
      ( "machine scale",
        k ~m:(Machines.dunnington ~scale:32 ()) () );
      ("cap", k ~max_cycles:1000 ());
      ("program", k ~prog:other_program ());
      ("point", k ~pt:{ point with Space.alpha = 0.75 } ());
    ]

let test_cache_key_sample_sets () =
  (* Sampled outcomes are approximate, so the factor must split the
     key — but the default factor (1 = exact) must leave keys
     byte-identical to pre-sampling ones, keeping existing persistent
     caches warm. *)
  let k ?sample_sets () =
    Cache.key ~version:"v" ~base_params:Mapping.default_params ~machine
      ~max_cycles:None ?sample_sets program (Space.default_point ())
  in
  check_string "default factor keys unchanged" (k ()) (k ~sample_sets:1 ());
  check_bool "sampled keys split" true (k ~sample_sets:4 () <> k ());
  check_bool "factors split from each other" true
    (k ~sample_sets:4 () <> k ~sample_sets:8 ())

let test_cache_store_lookup () =
  let dir = fresh_dir () in
  let key =
    Cache.key ~version:"v" ~base_params:Mapping.default_params
      ~machine ~max_cycles:None program (Space.default_point ())
  in
  check_bool "miss on empty dir" true (Cache.lookup ~dir key = None);
  let o =
    { Eval.cycles = 123; mem_accesses = 45; total_accesses = 678; capped = false }
  in
  Cache.store ~dir key o;
  (match Cache.lookup ~dir key with
  | Some o' -> check_bool "roundtrip" true (o' = o)
  | None -> Alcotest.fail "stored entry not found");
  (* A colliding file (same hash stem, different stored key) is a miss,
     not a wrong answer. *)
  let path = Filename.concat dir ("ctam-tune-" ^ Cache.hash key ^ ".json") in
  let oc = open_out path in
  output_string oc
    (J.to_string
       (J.Obj
          [ ("key", J.String "other"); ("outcome", Eval.outcome_to_json o) ]));
  close_out oc;
  check_bool "collision is a miss" true (Cache.lookup ~dir key = None);
  (* Corrupt JSON is a miss too. *)
  let oc = open_out path in
  output_string oc "{not json";
  close_out oc;
  check_bool "corrupt is a miss" true (Cache.lookup ~dir key = None)

module Tel = Ctam_telemetry

let tune_counter name labels =
  match Tel.Metrics.find (Tel.Metrics.scrape Tel.Metrics.default) name labels with
  | Some (Tel.Metrics.Counter n) -> n
  | _ -> 0

let entry = { Eval.cycles = 9; mem_accesses = 1; total_accesses = 2; capped = false }

let make_key () =
  Cache.key ~version:"v" ~base_params:Mapping.default_params ~machine
    ~max_cycles:None program
    (Space.default_point ())

(* Regression: an entry file holding valid JSON that is not an object
   (say "[]", from a crashed or foreign writer) used to escape
   [lookup] as an exception and kill the whole tuning run.  It must be
   an ordinary counted, logged miss like unparseable bytes are. *)
let test_cache_non_object_entry () =
  Tel.Metrics.set_enabled true;
  let dir = fresh_dir () in
  let key = make_key () in
  Cache.store ~dir key entry;
  let path = Filename.concat dir ("ctam-tune-" ^ Cache.hash key ^ ".json") in
  let corrupt () = tune_counter "ctam_tune_cache_lookups_total" [ ("result", "corrupt") ] in
  List.iter
    (fun payload ->
      let oc = open_out path in
      output_string oc payload;
      close_out oc;
      let before = corrupt () in
      check_bool ("non-object entry is a miss: " ^ payload) true
        (Cache.lookup ~dir key = None);
      check_int ("corruption counted: " ^ payload) (before + 1) (corrupt ()))
    [ "[]"; "\"zap\""; "42"; "null" ];
  (* A rewrite heals it. *)
  Cache.store ~dir key entry;
  check_bool "healed after re-store" true (Cache.lookup ~dir key = Some entry)

(* Regression: a failing store used to leave its temp file behind (and
   a short write could be installed as a truncated entry).  A store
   that cannot complete must clean up, count the failure, and stay an
   optimisation — never an exception. *)
let test_cache_store_failure () =
  Tel.Metrics.set_enabled true;
  let dir = fresh_dir () in
  let key = make_key () in
  (* A directory squatting on the entry path makes the final rename
     fail after the temp file was already written. *)
  let path = Filename.concat dir ("ctam-tune-" ^ Cache.hash key ^ ".json") in
  Unix.mkdir dir 0o755;
  Unix.mkdir path 0o755;
  let failures () = tune_counter "ctam_tune_cache_store_failures_total" [] in
  let before = failures () in
  Cache.store ~dir key entry;
  check_int "failure counted" (before + 1) (failures ());
  (* No temp-file litter: the squatting directory must be the only
     thing left in the cache directory. *)
  check_int "no temp files left behind" 1 (Array.length (Sys.readdir dir));
  check_bool "lookup still a miss" true (Cache.lookup ~dir key = None);
  (* An unwritable cache directory is the same story (meaningless when
     running as root, which bypasses permission checks). *)
  if Unix.geteuid () <> 0 then begin
    let ro = fresh_dir () in
    Unix.mkdir ro 0o500;
    let before = failures () in
    Cache.store ~dir:ro key entry;
    check_int "read-only dir counted" (before + 1) (failures ());
    check_int "read-only dir left clean" 0 (Array.length (Sys.readdir ro))
  end

(* --- Search ----------------------------------------------------------- *)

let settings strategy =
  { Search.default_settings with Search.strategy; axes = tiny_axes }

let test_best_not_worse_than_default () =
  List.iter
    (fun strategy ->
      let r =
        Search.run (settings strategy) ~machine ~program_name:"cg" program
      in
      let name = Search.strategy_id strategy in
      check_bool (name ^ " baseline is the first trial") true
        (match r.Search.trials with
        | t :: _ -> Space.equal t.Search.point r.Search.baseline.Search.point
        | [] -> false);
      check_bool (name ^ " best <= default") true
        (Eval.compare_outcome r.Search.best.Search.outcome
           r.Search.baseline.Search.outcome
        <= 0);
      check_bool (name ^ " best is uncapped") true
        (r.Search.best.Search.rung = None);
      check_bool (name ^ " improvement >= 1") true
        (Search.improvement r >= 1.))
    [ Search.Grid; Search.Descent; Search.Halving ]

let test_jobs_do_not_change_report () =
  let report jobs =
    let s = { (settings Search.Grid) with Search.jobs = Some jobs } in
    J.to_string (Search.to_json (Search.run s ~machine ~program_name:"cg" program))
  in
  check_string "j1 = j4" (report 1) (report 4)

let test_memo_does_not_change_report () =
  (* The engine phase memo is exact: a memoized search must produce a
     byte-identical report, whether the table is private to one domain
     or shared across a parallel map. *)
  let report ~memo jobs =
    let s =
      { (settings Search.Grid) with Search.jobs = Some jobs; memo }
    in
    J.to_string
      (Search.to_json (Search.run s ~machine ~program_name:"cg" program))
  in
  let plain = report ~memo:false 1 in
  check_string "memo j1" plain (report ~memo:true 1);
  check_string "memo j4" plain (report ~memo:true 4)

let test_stream_does_not_change_report () =
  (* Generator-backed evaluation is bit-identical too. *)
  let report stream =
    let s = { (settings Search.Grid) with Search.stream } in
    J.to_string
      (Search.to_json (Search.run s ~machine ~program_name:"cg" program))
  in
  check_string "streamed == dense" (report false) (report true)

let test_budget_caps_simulations () =
  let s = { (settings Search.Grid) with Search.budget = Some 1 } in
  let r = Search.run s ~machine ~program_name:"cg" program in
  (* The baseline is free; one more simulation allowed. *)
  check_int "simulations" 2 r.Search.simulations;
  check_bool "still not worse" true
    (Eval.compare_outcome r.Search.best.Search.outcome
       r.Search.baseline.Search.outcome
    <= 0)

let test_warm_cache_simulates_nothing () =
  let dir = fresh_dir () in
  let s = { (settings Search.Grid) with Search.cache_dir = Some dir } in
  let cold = Search.run s ~machine ~program_name:"cg" program in
  check_bool "cold run simulates" true (cold.Search.simulations > 0);
  check_int "cold run has no hits" 0 cold.Search.cache_hits;
  let warm = Search.run s ~machine ~program_name:"cg" program in
  check_int "warm run simulates nothing" 0 warm.Search.simulations;
  check_int "warm run hits everything" cold.Search.simulations
    warm.Search.cache_hits;
  check_bool "same winner" true
    (Space.equal cold.Search.best.Search.point warm.Search.best.Search.point
    && cold.Search.best.Search.outcome = warm.Search.best.Search.outcome);
  (* The cache never changes the result, only the counters. *)
  let nocache =
    Search.run (settings Search.Grid) ~machine ~program_name:"cg" program
  in
  check_bool "same winner without cache" true
    (Space.equal cold.Search.best.Search.point nocache.Search.best.Search.point)

let test_report_shape () =
  let s = { (settings Search.Descent) with Search.verify = true } in
  let r = Search.run s ~machine ~program_name:"cg" program in
  check_bool "verified" true (r.Search.verify_ok = Some true);
  let j = Search.to_json r in
  let m name = J.member name j in
  check_bool "tune version" true (m "ctam_tune_version" = Some (J.Int 1));
  check_bool "program" true (m "program" = Some (J.String "cg"));
  check_bool "strategy" true (m "strategy" = Some (J.String "descent"));
  check_bool "has best" true (m "best" <> None);
  (match m "tuned_vs_default" with
  | Some (J.Float f) -> check_bool "ratio <= 1" true (f <= 1.0 && f > 0.)
  | _ -> Alcotest.fail "tuned_vs_default missing");
  (* The winning params file round-trips into a point. *)
  match Space.of_json (Search.best_params_json r) with
  | Ok p -> check_bool "params file" true (Space.equal p r.Search.best.Search.point)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "tune"
    [
      ( "space",
        [
          Alcotest.test_case "canonical pins unused" `Quick
            test_canonical_pins_unused;
          Alcotest.test_case "grid dedup + defaults" `Quick
            test_grid_dedup_and_default;
          Alcotest.test_case "json roundtrip" `Quick test_point_json_roundtrip;
        ] );
      ( "eval",
        [ Alcotest.test_case "max_cycles cap" `Quick test_max_cycles_cap ] );
      ( "cache",
        [
          Alcotest.test_case "key sensitivity" `Quick
            test_cache_key_sensitivity;
          Alcotest.test_case "sample_sets keys" `Quick
            test_cache_key_sample_sets;
          Alcotest.test_case "store/lookup" `Quick test_cache_store_lookup;
          Alcotest.test_case "non-object entry is a counted miss" `Quick
            test_cache_non_object_entry;
          Alcotest.test_case "store failure is counted and clean" `Quick
            test_cache_store_failure;
        ] );
      ( "search",
        [
          Alcotest.test_case "best <= default" `Quick
            test_best_not_worse_than_default;
          Alcotest.test_case "jobs invariant" `Quick
            test_jobs_do_not_change_report;
          Alcotest.test_case "memo invariant" `Quick
            test_memo_does_not_change_report;
          Alcotest.test_case "stream invariant" `Quick
            test_stream_does_not_change_report;
          Alcotest.test_case "budget" `Quick test_budget_caps_simulations;
          Alcotest.test_case "warm cache" `Quick
            test_warm_cache_simulates_nothing;
          Alcotest.test_case "report shape" `Quick test_report_shape;
        ] );
    ]
