(* Tests for the mapping legality checker: the four invariants on real
   mappings, the injected-corruption negative modes, the trace-level
   race detector, and the [ctamap check] exit-code contract. *)

open Ctam_arch
open Ctam_cachesim
open Ctam_core
open Ctam_workloads
open Ctam_verify

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let scale = 64
let machine name = Machines.by_name ~scale name

let compile ?(machine = machine "dunnington") ?(scheme = Mapping.Combined) k =
  Mapping.compile scheme ~machine (Kernel.small_program k)

let has_invariant name r =
  List.exists (fun i -> i.Verify.invariant = name) r.Verify.issues

(* --- topology well-formedness ---------------------------------------- *)

let test_topology_presets () =
  List.iter
    (fun name ->
      Alcotest.(check (list string))
        (name ^ " well-formed") []
        (List.map
           (fun i -> i.Verify.detail)
           (Verify.check_topology (machine name))))
    [ "harpertown"; "nehalem"; "dunnington"; "arch-i"; "arch-ii" ]

(* --- positive: the real pipeline passes everywhere -------------------- *)

let test_suite_combined () =
  List.iter
    (fun mname ->
      let machine = machine mname in
      List.iter
        (fun (k : Kernel.t) ->
          let c = Mapping.compile Mapping.Combined ~machine
              (Kernel.small_program k)
          in
          let r = Verify.check c in
          Alcotest.(check (list string))
            (Printf.sprintf "%s on %s" k.Kernel.name mname)
            []
            (List.map (fun i -> i.Verify.invariant ^ ": " ^ i.Verify.detail)
               r.Verify.issues);
          check_bool "did real work" true (r.Verify.points_checked > 0))
        Suite.all)
    [ "harpertown"; "nehalem"; "dunnington" ]

let test_dependent_kernels_all_schemes () =
  (* sp and facesim carry loop-level dependences: every scheme must
     still order their dependence edges, and the checker must actually
     see those edges. *)
  List.iter
    (fun k ->
      List.iter
        (fun scheme ->
          let c = compile ~scheme k in
          let r = Verify.check c in
          check_bool
            (Printf.sprintf "%s/%s clean" k.Kernel.name
               (Mapping.scheme_name scheme))
            true (Verify.ok r);
          check_bool
            (Printf.sprintf "%s/%s edges seen" k.Kernel.name
               (Mapping.scheme_name scheme))
            true
            (r.Verify.edges_checked > 0))
        Mapping.all_schemes)
    [ Suite.sp; Suite.facesim ]

let test_cluster_mode () =
  (* §3.5.2 Cluster mode serializes each dependent cluster on one core
     instead of adding barriers: ordering is then same-round, same-core
     position — the second arm of the checker's precedence rule. *)
  let params =
    {
      Mapping.default_params with
      dependence_mode = Ctam_core.Distribute.Cluster;
    }
  in
  List.iter
    (fun (k : Kernel.t) ->
      let c =
        Mapping.compile ~params Mapping.Combined
          ~machine:(machine "dunnington")
          (Kernel.small_program k)
      in
      let r = Verify.check c in
      Alcotest.(check (list string))
        (k.Kernel.name ^ " cluster-mode clean") []
        (List.map (fun i -> i.Verify.invariant ^ ": " ^ i.Verify.detail)
           r.Verify.issues);
      check_bool "edges seen" true (r.Verify.edges_checked > 0))
    [ Suite.sp; Suite.facesim ]

(* --- negative: injected corruption must be caught --------------------- *)

let test_inject_bad_coverage () =
  List.iter
    (fun k ->
      let c = compile k in
      let c, what = Inject.apply Inject.Bad_coverage c in
      check_bool "describes itself" true
        (Astring.String.is_infix ~affix:"dropped" what);
      let r = Verify.check c in
      check_bool "rejected" false (Verify.ok r);
      check_bool "as a coverage hole" true (has_invariant "coverage" r);
      (* The diagnostic must name the nest and count the hole. *)
      check_bool "diagnostic is concrete" true
        (List.exists
           (fun i ->
             i.Verify.invariant = "coverage"
             && Astring.String.is_infix ~affix:"never assigned" i.Verify.detail)
           r.Verify.issues))
    [ Suite.cg; Suite.sp ]

let test_inject_bad_order () =
  (* sp has dependences: reversing its rounds must trip the dependence
     check. *)
  let c, what = Inject.apply Inject.Bad_order (compile Suite.sp) in
  check_bool "reversed rounds" true
    (Astring.String.is_infix ~affix:"reversed" what);
  let r = Verify.check c in
  check_bool "rejected" false (Verify.ok r);
  check_bool "as a dependence violation" true (has_invariant "dependence" r);
  check_bool "diagnostic says backwards" true
    (List.exists
       (fun i -> Astring.String.is_infix ~affix:"backwards" i.Verify.detail)
       r.Verify.issues);
  (* cg is dependence-free: the fallback plants a cross-core race. *)
  let c, what = Inject.apply Inject.Bad_order (compile Suite.cg) in
  check_bool "planted race" true
    (Astring.String.is_infix ~affix:"race" what);
  let r = Verify.check c in
  check_bool "rejected too" false (Verify.ok r);
  check_bool "as a race" true (has_invariant "race" r)

let test_inject_of_string () =
  check_bool "bad-coverage" true
    (Inject.of_string "bad-coverage" = Ok Inject.Bad_coverage);
  check_bool "bad-order" true
    (Inject.of_string "bad-order" = Ok Inject.Bad_order);
  check_bool "round-trips" true
    (List.for_all
       (fun c -> Inject.of_string (Inject.to_string c) = Ok c)
       Inject.all);
  check_bool "unknown rejected" true
    (match Inject.of_string "bad-vibes" with Error _ -> true | Ok _ -> false)

(* --- race detector on hand-built phases -------------------------------- *)

let w addr = Engine.encode_access ~addr ~write:true
let r addr = Engine.encode_access ~addr ~write:false

let replay phases =
  let det = Race.create () in
  Race.replay det phases;
  det

let test_race_write_write () =
  let det = replay [ [| [| w 8 |]; [| w 8 |] |] ] in
  check_int "one conflict" 1 (Race.num_conflicts det);
  match Race.conflicts det with
  | [ c ] ->
      check_int "phase" 0 c.Race.c_phase;
      check_int "addr" 8 c.Race.c_addr;
      check_bool "is a write" true c.Race.c_write;
      check_bool "between cores 0 and 1" true
        ((c.Race.c_core, c.Race.c_other) = (1, 0)
        || (c.Race.c_core, c.Race.c_other) = (0, 1))
  | _ -> Alcotest.fail "expected exactly one conflict"

let test_race_read_write () =
  (* A read racing an earlier other-core write is flagged; the
     symmetric write-after-read as well. *)
  check_int "read after write" 1
    (Race.num_conflicts (replay [ [| [| w 4 |]; [| r 4 |] |] ]));
  check_int "write after read" 1
    (Race.num_conflicts (replay [ [| [| r 4 |]; [| w 4 |] |] ]))

let test_race_benign () =
  (* Shared reads are fine. *)
  check_int "read sharing" 0
    (Race.num_conflicts (replay [ [| [| r 4; r 8 |]; [| r 4; r 8 |] |] ]));
  (* Same-core rewrites are fine. *)
  check_int "private writes" 0
    (Race.num_conflicts (replay [ [| [| w 4; w 4; r 4 |]; [| w 8 |] |] ]));
  (* A barrier separates the phases: write then other-core write is
     ordered, not racing. *)
  check_int "phase separation" 0
    (Race.num_conflicts (replay [ [| [| w 4 |]; [||] |]; [| [||]; [| w 4 |] |] ]))

let test_race_probe_counts () =
  (* The probe view feeds the same detector, and the total count keeps
     climbing past the detail cap. *)
  let det = Race.create () in
  let probe = Race.probe det in
  probe.Probe.on_phase_start ~phase:0;
  for i = 0 to 99 do
    probe.Probe.on_access ~core:0 ~addr:i ~line:0 ~write:true;
    probe.Probe.on_access ~core:1 ~addr:i ~line:0 ~write:true
  done;
  check_int "all counted" 100 (Race.num_conflicts det);
  check_bool "details capped" true (List.length (Race.conflicts det) <= 100);
  check_bool "details nonempty" true (Race.conflicts det <> [])

(* --- mapping-level race check ------------------------------------------ *)

let test_check_flags_planted_race () =
  let c = compile Suite.equake in
  match c.Mapping.phases with
  | [] -> Alcotest.fail "no phases"
  | phase :: rest ->
      let clash = w 12 in
      let phase =
        Array.mapi
          (fun core s ->
            if core < 2 then
              Engine.dense (Array.append (Engine.force_stream s) [| clash |])
            else s)
          phase
      in
      let r = Verify.check { c with Mapping.phases = phase :: rest } in
      check_bool "race reported" true (has_invariant "race" r)

(* --- run-report wiring -------------------------------------------------- *)

let test_run_report_verify () =
  let p =
    Ctam_exp.Run_report.profile ~check:true Mapping.Combined
      ~machine:(machine "nehalem")
      (Kernel.small_program Suite.cg)
  in
  (match p.Ctam_exp.Run_report.verify with
  | None -> Alcotest.fail "verify missing from profile"
  | Some r -> check_bool "clean" true (Verify.ok r));
  match Ctam_util.Json.member "verify" p.Ctam_exp.Run_report.report with
  | Some v ->
      check_bool "json ok flag" true
        (Ctam_util.Json.to_bool (Ctam_util.Json.member_exn "ok" v))
  | None -> Alcotest.fail "verify missing from JSON report"

(* --- CLI exit codes ----------------------------------------------------- *)

(* Under [dune runtest] the cwd is [_build/default/test] and the binary
   is a declared dep, so the relative path exists; [dune exec] from the
   repo root needs the second candidate. *)
let ctamap =
  List.find Sys.file_exists
    [
      Filename.concat ".." (Filename.concat "bin" "ctamap.exe");
      "_build/default/bin/ctamap.exe";
    ]

let run_ctamap args =
  let out = Filename.temp_file "ctamap_check" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2>&1" (Filename.quote ctamap) args
         (Filename.quote out))
  in
  let ic = open_in_bin out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let test_cli_exit_codes () =
  let code, text = run_ctamap "check cg -m nehalem --scale 64" in
  check_int "clean mapping exits 0" 0 code;
  check_bool "says verified" true
    (Astring.String.is_infix ~affix:"mapping verified" text);
  List.iter
    (fun mode ->
      let code, text =
        run_ctamap
          (Printf.sprintf "check sp -m dunnington --scale 64 --inject %s" mode)
      in
      check_bool (mode ^ " exits non-zero") true (code <> 0);
      check_bool (mode ^ " prints diagnostics") true
        (Astring.String.is_infix ~affix:"mapping INVALID" text))
    [ "bad-coverage"; "bad-order" ]

let test_cli_json () =
  let json = Filename.temp_file "ctamap_check" ".json" in
  let code, _ =
    run_ctamap
      (Printf.sprintf "check cg -m nehalem --scale 64 --json %s"
         (Filename.quote json))
  in
  check_int "exit 0" 0 code;
  let ic = open_in_bin json in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove json;
  let j = Ctam_util.Json.parse_exn text in
  let checks = Ctam_util.Json.(to_list (member_exn "checks" j)) in
  check_int "one scheme" 1 (List.length checks);
  let report = Ctam_util.Json.member_exn "report" (List.hd checks) in
  check_bool "ok" true Ctam_util.Json.(to_bool (member_exn "ok" report));
  check_int "no issues" 0
    (List.length Ctam_util.Json.(to_list (member_exn "issues" report)))

let () =
  Alcotest.run "verify"
    [
      ( "topology",
        [ Alcotest.test_case "presets well-formed" `Quick test_topology_presets ]
      );
      ( "mappings",
        [
          Alcotest.test_case "suite x machines clean" `Slow test_suite_combined;
          Alcotest.test_case "dependent kernels, all schemes" `Quick
            test_dependent_kernels_all_schemes;
          Alcotest.test_case "cluster dependence mode" `Quick
            test_cluster_mode;
        ] );
      ( "inject",
        [
          Alcotest.test_case "bad-coverage caught" `Quick
            test_inject_bad_coverage;
          Alcotest.test_case "bad-order caught" `Quick test_inject_bad_order;
          Alcotest.test_case "mode names" `Quick test_inject_of_string;
        ] );
      ( "race",
        [
          Alcotest.test_case "write-write" `Quick test_race_write_write;
          Alcotest.test_case "read-write" `Quick test_race_read_write;
          Alcotest.test_case "benign patterns" `Quick test_race_benign;
          Alcotest.test_case "probe + cap" `Quick test_race_probe_counts;
          Alcotest.test_case "planted race in mapping" `Quick
            test_check_flags_planted_race;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "run-report verify member" `Quick
            test_run_report_verify;
          Alcotest.test_case "cli exit codes" `Quick test_cli_exit_codes;
          Alcotest.test_case "cli json" `Quick test_cli_json;
        ] );
    ]
