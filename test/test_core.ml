(* Tests for the core mapping library: affinity graph, distribution
   (Fig. 6), scheduling (Fig. 7), baselines, the end-to-end pipeline
   and the optimal search. *)

open Ctam_poly
open Ctam_ir
open Ctam_arch
open Ctam_blocks
open Ctam_deps
open Ctam_core
open Ctam_cachesim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small machine keeps these tests fast: Dunnington topology at 1/64
   capacity. *)
let machine = Machines.dunnington ~scale:64 ()

(* The paper's worked example: Figure 5 loop, 12 blocks, 8 groups. *)
let fig5_program k =
  let m = 12 * k in
  let d = 1 in
  let j = Affine.var d 0 in
  let b sub = Reference.make ~array_name:"B" ~subs:[| sub |] ~kind:Reference.Read in
  let wr = Reference.make ~array_name:"B" ~subs:[| j |] ~kind:Reference.Write in
  let nest =
    Nest.make ~name:"fig5" ~index_names:[| "j" |]
      ~domain:(Domain.box [| (2 * k, m - (2 * k) - 1) |])
      ~body:
        [
          Stmt.assign wr
            (Expr.add
               (Expr.add (Expr.load (b j))
                  (Expr.load (b (Affine.add_const (2 * k) j))))
               (Expr.load (b (Affine.add_const (-2 * k) j))));
        ]
      ~parallel:true
  in
  Program.make ~name:"fig5"
    ~arrays:[ Array_decl.make ~name:"B" ~dims:[| m |] ~elem_size:8 ]
    ~nests:[ nest ]

let groups_of ?(block = 2048) p =
  let nest = List.hd (Program.parallel_nests p) in
  let bm, _ = Block_map.for_program ~block_size:block ~line:64 p in
  let grouping = Tags.group nest bm in
  (nest, grouping)

let total_groups_iters gs =
  List.fold_left (fun a g -> a + Iter_group.size g) 0 gs

(* --- Affinity_graph -------------------------------------------------- *)

let test_affinity_graph () =
  let _, grouping = groups_of (fig5_program 256) in
  let g = Affinity_graph.build grouping.Tags.groups in
  check_int "nodes" 8 (Affinity_graph.num_nodes g);
  (* Groups 0 (101010...) and 1 (010101...) share no blocks. *)
  check_int "disjoint tags" 0 (Affinity_graph.weight g 0 1);
  (* Groups 0 and 2 (001010100000) share blocks 2 and 4. *)
  check_int "overlap" 2 (Affinity_graph.weight g 0 2);
  check_bool "edges exist" true (Affinity_graph.edges g <> []);
  check_bool "total weight positive" true (Affinity_graph.total_weight g > 0)

(* --- Distribute ------------------------------------------------------ *)

let test_distribute_partition_preserved () =
  let _, grouping = groups_of (fig5_program 256) in
  let groups = grouping.Tags.groups in
  let assignment = Distribute.run machine groups in
  check_int "core count" 12 (Array.length assignment);
  let before = Array.fold_left (fun a g -> a + Iter_group.size g) 0 groups in
  let after = Array.fold_left (fun a gs -> a + total_groups_iters gs) 0 assignment in
  check_int "iterations preserved" before after;
  (* Disjointness across cores. *)
  let enc = grouping.Tags.encoder in
  let union =
    Array.fold_left
      (fun acc gs ->
        List.fold_left
          (fun acc g ->
            check_bool "cores disjoint" true
              (Iterset.is_empty (Iterset.inter acc g.Iter_group.iters));
            Iterset.union acc g.Iter_group.iters)
          acc gs)
      (Iterset.empty enc) assignment
  in
  check_int "union covers" before (Iterset.cardinal union)

let test_distribute_balanced () =
  let _, grouping = groups_of (fig5_program 256) in
  let assignment =
    Distribute.run ~balance_threshold:0.10 machine grouping.Tags.groups
  in
  let sizes = Array.map total_groups_iters assignment in
  let total = Array.fold_left ( + ) 0 sizes in
  let avg = float_of_int total /. 12. in
  Array.iter
    (fun s ->
      check_bool "within global threshold" true
        (abs_float (float_of_int s -. avg) <= (0.10 *. avg) +. 1.))
    sizes

let test_cluster_into () =
  let _, grouping = groups_of (fig5_program 256) in
  let clusters = Distribute.cluster_into 3 (Array.to_list grouping.Tags.groups) in
  check_int "three clusters" 3 (List.length clusters);
  let all = List.concat clusters in
  check_int "no group lost" 8 (List.length all);
  (* More clusters than groups: splitting must provide them. *)
  let clusters10 = Distribute.cluster_into 10 (Array.to_list grouping.Tags.groups) in
  check_int "ten clusters" 10 (List.length clusters10);
  check_int "iterations preserved"
    (Tags.total_iterations grouping)
    (List.fold_left (fun a c -> a + total_groups_iters c) 0 clusters10)

let test_balance_respects_weights () =
  let _, grouping = groups_of (fig5_program 256) in
  let gs = Array.to_list grouping.Tags.groups in
  let clusters = [| gs; [] |] in
  let balanced = Distribute.balance ~threshold:0.05 ~weights:[| 3; 1 |] clusters in
  let s0 = total_groups_iters balanced.(0)
  and s1 = total_groups_iters balanced.(1) in
  let total = float_of_int (s0 + s1) in
  check_bool "3:1 split" true
    (abs_float (float_of_int s0 -. (0.75 *. total)) <= (0.06 *. total) +. 1.)

(* Affinity property: the distribution should put the groups sharing
   blocks on affine cores more often than a random split would. *)
let test_distribute_affinity_quality () =
  let _, grouping = groups_of (fig5_program 256) in
  let groups = grouping.Tags.groups in
  let assignment = Distribute.run machine groups in
  (* For every pair of groups with positive dot sharing a socket's
     cores, count; the fig5 chain decomposes into odd/even chains that
     should not straddle sockets more than necessary. *)
  let core_of = Hashtbl.create 16 in
  Array.iteri
    (fun c gs -> List.iter (fun g -> Hashtbl.replace core_of g.Iter_group.id c) gs)
    assignment;
  let cross = ref 0 and affine = ref 0 in
  Array.iteri
    (fun i gi ->
      Array.iteri
        (fun j gj ->
          if i < j && Iter_group.dot gi gj > 0 then begin
            match
              ( Hashtbl.find_opt core_of gi.Iter_group.id,
                Hashtbl.find_opt core_of gj.Iter_group.id )
            with
            | Some ci, Some cj ->
                if Topology.affinity_level machine ci cj = None then incr cross
                else incr affine
            | _ -> ()
          end)
        groups)
    groups;
  check_bool "sharing pairs mostly affine" true (!affine >= !cross)

(* --- Schedule -------------------------------------------------------- *)

let test_schedule_preserves_groups () =
  let _, grouping = groups_of (fig5_program 256) in
  let groups = grouping.Tags.groups in
  let assignment = Distribute.run machine groups in
  let dg = Dep_graph.create (Array.length groups) in
  let sched = Schedule.run machine assignment dg in
  let per_core = Schedule.per_core sched in
  Array.iteri
    (fun c gs ->
      check_int
        (Printf.sprintf "core %d same iterations" c)
        (total_groups_iters assignment.(c))
        (total_groups_iters gs))
    per_core

let test_schedule_respects_deps () =
  let k = 256 in
  let p = fig5_program k in
  let nest, _ = groups_of p in
  ignore nest;
  let bm, _ = Block_map.for_program ~block_size:2048 ~line:64 p in
  let nest = List.hd (Program.parallel_nests p) in
  let grouping = Tags.group nest bm in
  let dg0 = Group_deps.compute grouping in
  let groups, dag = Group_deps.merge_cycles grouping dg0 in
  let assignment = Distribute.run machine groups in
  let sched = Schedule.run machine assignment dag in
  check_bool "dependences respected" true (Schedule.respects_deps sched dag);
  check_bool "multiple rounds" true (Schedule.num_rounds sched > 1)

let test_schedule_quantum () =
  let _, grouping = groups_of (fig5_program 256) in
  let groups = grouping.Tags.groups in
  let assignment = Distribute.run machine groups in
  let dg = Dep_graph.create (Array.length groups) in
  let one_round = Schedule.run ~quantum:max_int machine assignment dg in
  check_int "single round when quantum is huge" 1 (Schedule.num_rounds one_round)

(* --- Baselines ------------------------------------------------------- *)

let test_block_partition () =
  let p = fig5_program 256 in
  let nest = List.hd (Program.parallel_nests p) in
  let chunks = Baselines.block_partition ~n:4 nest in
  check_int "4 chunks" 4 (Array.length chunks);
  let sizes = Array.map List.length chunks in
  let total = Array.fold_left ( + ) 0 sizes in
  check_int "covers" (Nest.trip_count nest) total;
  Array.iter
    (fun s -> check_bool "even" true (abs (s - (total / 4)) <= 1))
    sizes;
  (* Chunks are contiguous in lexicographic order. *)
  let flat = List.concat (Array.to_list (Array.map (fun c -> c) chunks)) in
  let sorted = List.sort compare (List.map (fun iv -> iv.(0)) flat) in
  Alcotest.(check (list int)) "in order" sorted (List.map (fun iv -> iv.(0)) flat)

let test_default_assignment () =
  let _, grouping = groups_of (fig5_program 256) in
  let assignment = Baselines.default_assignment ~topo:machine grouping.Tags.groups in
  check_int "cores" 12 (Array.length assignment);
  let total = Array.fold_left (fun a gs -> a + total_groups_iters gs) 0 assignment in
  check_int "iterations preserved" (Tags.total_iterations grouping) total

(* --- Permute / Tiling ------------------------------------------------- *)

let transpose_program n =
  let d = 2 in
  let i = Affine.var d 0 and j = Affine.var d 1 in
  let wr = Reference.make ~array_name:"OutA" ~subs:[| i; j |] ~kind:Reference.Write in
  let rd = Reference.make ~array_name:"InA" ~subs:[| j; i |] ~kind:Reference.Read in
  let nest =
    Nest.make ~name:"tr" ~index_names:[| "i"; "j" |]
      ~domain:(Domain.box [| (0, n - 1); (0, n - 1) |])
      ~body:[ Stmt.assign wr (Expr.load rd) ]
      ~parallel:true
  in
  Program.make ~name:"tr"
    ~arrays:
      [
        Array_decl.make ~name:"OutA" ~dims:[| n; n |] ~elem_size:8;
        Array_decl.make ~name:"InA" ~dims:[| n; n |] ~elem_size:8;
      ]
    ~nests:[ nest ]

let test_permute_stride () =
  let p = transpose_program 64 in
  let layout = Layout.of_program ~align:64 p in
  let nest = List.hd p.Program.nests in
  (* Bumping j moves OutA by 8 bytes and InA by a whole row. *)
  let sj = Permute.stride layout nest 1 in
  let si = Permute.stride layout nest 0 in
  (* Symmetric for a pure transpose: both indices average the same. *)
  Alcotest.(check (float 1.)) "sym" si sj;
  (* On a row sweep (galgel-like) j is clearly innermost. *)
  let p2 =
    Program.make ~name:"row"
      ~arrays:[ Array_decl.make ~name:"A" ~dims:[| 64; 64 |] ~elem_size:8 ]
      ~nests:
        [
          Nest.make ~name:"row" ~index_names:[| "i"; "j" |]
            ~domain:(Domain.box [| (0, 62); (0, 63) |])
            ~body:
              [
                Stmt.assign
                  (Reference.make ~array_name:"A"
                     ~subs:[| Affine.var 2 0; Affine.var 2 1 |]
                     ~kind:Reference.Write)
                  (Expr.load
                     (Reference.make ~array_name:"A"
                        ~subs:[| Affine.add_const 1 (Affine.var 2 0); Affine.var 2 1 |]
                        ~kind:Reference.Read));
              ]
            ~parallel:true;
        ]
  in
  let layout2 = Layout.of_program ~align:64 p2 in
  let nest2 = List.hd p2.Program.nests in
  let order = Permute.best_order layout2 nest2 in
  check_int "j innermost" 1 order.(1)

let test_tiling_apply () =
  let iters =
    List.concat_map (fun i -> List.map (fun j -> [| i; j |]) [ 0; 1; 2; 3 ]) [ 0; 1; 2; 3 ]
  in
  let tiled = Tiling.apply ~tile:[| 2; 2 |] ~perm:[| 0; 1 |] iters in
  (* First tile fully enumerated before the second one starts. *)
  Alcotest.(check (list (array int)))
    "tile order"
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]
    (List.filteri (fun i _ -> i < 4) tiled);
  check_int "same count" 16 (List.length tiled);
  Alcotest.check_raises "bad tile" (Invalid_argument "Tiling.apply: tile")
    (fun () -> ignore (Tiling.apply ~tile:[| 0; 2 |] ~perm:[| 0; 1 |] iters))

let test_choose_tile_bounds () =
  let p = transpose_program 64 in
  let layout = Layout.of_program ~align:64 p in
  let nest = List.hd p.Program.nests in
  let t = Tiling.choose_tile ~l1_bytes:2048 layout nest in
  check_bool "clamped" true (t >= 4 && t <= 256)

(* --- Mapping pipeline ------------------------------------------------- *)

let test_compile_all_schemes_cover () =
  let p = fig5_program 256 in
  let nest = List.hd (Program.parallel_nests p) in
  let expected = Nest.trip_count nest * 4 (* refs per iteration *) in
  List.iter
    (fun scheme ->
      let c = Mapping.compile scheme ~machine p in
      let total =
        List.fold_left
          (fun acc phase ->
            Array.fold_left (fun acc s -> acc + Engine.stream_length s) acc phase)
          0 c.Mapping.phases
      in
      check_int
        (Mapping.scheme_name scheme ^ " emits every access")
        expected total)
    Mapping.all_schemes

let test_simulate_deterministic () =
  let p = fig5_program 256 in
  let s1 = Mapping.run Mapping.Combined ~machine p in
  let s2 = Mapping.run Mapping.Combined ~machine p in
  check_int "same cycles" s1.Stats.cycles s2.Stats.cycles;
  check_int "same misses" s1.Stats.mem_accesses s2.Stats.mem_accesses

let test_stream_compile_matches_dense () =
  (* Generator-backed compilation must emit the same access sequence
     as the materialized phases — and therefore bit-identical
     simulation results — for every scheme (the streamed phases chain
     Codegen box walks, explicit-order chunks and domain odometers,
     all asserted here at once). *)
  let p = fig5_program 256 in
  List.iter
    (fun scheme ->
      let dense = Mapping.compile scheme ~machine p in
      let streamed = Mapping.compile ~stream:true scheme ~machine p in
      let name = Mapping.scheme_name scheme in
      let force c =
        List.map (Array.map Engine.force_stream) c.Mapping.phases
      in
      check_bool (name ^ ": generator in phases") true
        (List.exists
           (Array.exists (function Engine.Gen _ -> true | Engine.Dense _ -> false))
           streamed.Mapping.phases);
      check_bool (name ^ ": same access sequences") true
        (force streamed = force dense);
      check_bool (name ^ ": bit-identical stats") true
        (Mapping.simulate streamed = Mapping.simulate dense);
      (* Set-sampled runs take the cursors' [skip_to_sample] fast path
         (chunk-buffer scans in Trace / part-wise delegation in
         stream_concat); the extrapolated statistics must not depend on
         the stream representation.  The scale-64 machine's L1 has a
         single set, so sample on a scale-16 one. *)
      let m2 = Machines.dunnington ~scale:16 () in
      let p2 = fig5_program 64 in
      let dense2 = Mapping.compile scheme ~machine:m2 p2 in
      let streamed2 = Mapping.compile ~stream:true scheme ~machine:m2 p2 in
      check_bool (name ^ ": bit-identical sampled stats") true
        (Mapping.simulate ~sample_sets:2 streamed2
        = Mapping.simulate ~sample_sets:2 dense2))
    Mapping.all_schemes

let test_port_shapes () =
  let p = fig5_program 256 in
  let c = Mapping.compile Mapping.Combined ~machine p in
  let target = Machines.harpertown ~scale:64 () in
  let ported = Mapping.port c ~machine:target in
  List.iter
    (fun phase -> check_int "8 streams" 8 (Array.length phase))
    ported.Mapping.phases;
  (* Porting preserves every access. *)
  let count phases =
    List.fold_left
      (fun acc phase -> Array.fold_left (fun a s -> a + Engine.stream_length s) acc phase)
      0 phases
  in
  check_int "accesses preserved" (count c.Mapping.phases) (count ported.Mapping.phases);
  let stats = Mapping.simulate ported in
  check_bool "runs" true (stats.Stats.cycles > 0)

let test_serial_baseline () =
  let p = fig5_program 64 in
  let stats = Mapping.simulate_serial ~machine p in
  let nest = List.hd (Program.parallel_nests p) in
  check_int "serial accesses" (Nest.trip_count nest * 4) stats.Stats.total_accesses

let test_topology_beats_base_on_fig5 () =
  (* The headline effect on the paper's own example loop. *)
  let p = fig5_program 1024 in
  let base = Mapping.run Mapping.Base ~machine p in
  let topo = Mapping.run Mapping.Topology_aware ~machine p in
  check_bool "topology-aware wins" true
    (topo.Stats.cycles < base.Stats.cycles)

(* --- Optimal ---------------------------------------------------------- *)

let test_optimal_not_worse () =
  let p = fig5_program 256 in
  let combined = Mapping.run Mapping.Combined ~machine p in
  let result = Optimal.search ~budget:60 ~exhaustive_limit:10 ~machine p in
  (* The whole-group local search cannot use the splits Combined's
     balancing performs, so allow a modest margin. *)
  check_bool "optimal close to or better than combined" true
    (float_of_int result.Optimal.stats.Stats.cycles
     <= 1.10 *. float_of_int combined.Stats.cycles);
  check_bool "spent evaluations" true (result.Optimal.evaluations > 0)

(* --- additional behaviour tests -------------------------------------- *)

let test_alpha_beta_extremes () =
  (* Extreme alpha/beta weights must still produce complete, legal
     schedules (they only change the picking order). *)
  let _, grouping = groups_of (fig5_program 256) in
  let groups = grouping.Tags.groups in
  let assignment = Distribute.run machine groups in
  let dg = Dep_graph.create (Array.length groups) in
  List.iter
    (fun (alpha, beta) ->
      let sched = Schedule.run ~alpha ~beta machine assignment dg in
      let total =
        Array.fold_left
          (fun a gs -> a + total_groups_iters gs)
          0 (Schedule.per_core sched)
      in
      check_int
        (Printf.sprintf "complete at a=%.1f b=%.1f" alpha beta)
        (Array.fold_left (fun a gs -> a + total_groups_iters gs) 0 assignment)
        total)
    [ (0., 0.); (1., 0.); (0., 1.); (1., 1.) ]

let test_port_oversubscription () =
  (* Porting a 12-core mapping to an 8-core machine oversubscribes
     cores round-robin; porting to a larger machine leaves cores idle. *)
  let p = fig5_program 256 in
  let c = Mapping.compile Mapping.Topology_aware ~machine p in
  let smaller = Machines.harpertown ~scale:64 () in
  let ported = Mapping.port c ~machine:smaller in
  List.iter
    (fun phase ->
      check_int "8 streams" 8 (Array.length phase))
    ported.Mapping.phases;
  let bigger = Machines.arch_i ~scale:64 () in
  let ported_up = Mapping.port c ~machine:bigger in
  List.iter
    (fun phase ->
      check_int "16 streams" 16 (Array.length phase);
      (* Cores 12..15 receive nothing. *)
      for core = 12 to 15 do
        check_int "idle core" 0 (Engine.stream_length phase.(core))
      done)
    ported_up.Mapping.phases

let test_serial_nest_runs_on_core0 () =
  (* A non-parallel nest executes serially on core 0 regardless of the
     scheme. *)
  let d = 1 in
  let i = Affine.var d 0 in
  let wr = Reference.make ~array_name:"A" ~subs:[| i |] ~kind:Reference.Write in
  let serial_nest =
    Nest.make ~name:"serial" ~index_names:[| "i" |]
      ~domain:(Domain.box [| (0, 99) |])
      ~body:[ Stmt.assign wr (Expr.const 1.) ]
      ~parallel:false
  in
  let p =
    Program.make ~name:"mixed"
      ~arrays:[ Array_decl.make ~name:"A" ~dims:[| 100 |] ~elem_size:8 ]
      ~nests:[ serial_nest ]
  in
  let c = Mapping.compile Mapping.Combined ~machine p in
  match c.Mapping.phases with
  | [ phase ] ->
      check_int "core 0 has the work" 100 (Engine.stream_length phase.(0));
      for core = 1 to 11 do
        check_int "others idle" 0 (Engine.stream_length phase.(core))
      done
  | _ -> Alcotest.fail "expected exactly one phase"

let test_auto_block () =
  let p = fig5_program 256 in
  let params = { Mapping.default_params with auto_block = true } in
  let c = Mapping.compile ~params Mapping.Topology_aware ~machine p in
  let info = List.hd c.Mapping.infos in
  (* The chosen block size must keep the most aggressive group's
     footprint within L1 (or be the smallest candidate). *)
  check_bool "block size chosen" true (info.Mapping.used_block_size > 0);
  check_bool "power of two" true
    (info.Mapping.used_block_size land (info.Mapping.used_block_size - 1) = 0)

let test_map_topo_differs_from_machine () =
  (* Figure 20's level-subset versions: the mapper sees a truncated
     topology but the phases run on the full machine. *)
  let p = fig5_program 256 in
  let truncated = Topology.truncate_levels 2 machine in
  let c = Mapping.compile ~map_topo:truncated Mapping.Topology_aware ~machine p in
  check_int "cores unchanged" 12
    (match c.Mapping.phases with
    | phase :: _ -> Array.length phase
    | [] -> 0);
  let stats = Mapping.simulate c in
  check_bool "simulates" true (stats.Stats.cycles > 0)

let test_base_plus_never_beaten_by_plain_permutation () =
  (* Base+ searches tile candidates including the untiled permuted
     order, so it can only match or beat it. *)
  let p = Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.mesa in
  let bp = Mapping.run Mapping.Base_plus ~machine p in
  let b = Mapping.run Mapping.Base ~machine p in
  check_bool "base+ <= base * 1.001 on a transpose" true
    (float_of_int bp.Stats.cycles <= 1.001 *. float_of_int b.Stats.cycles)

let test_dynamic_sched () =
  (* Dynamic central-queue scheduling executes every access exactly
     once and, lacking affinity, does not beat the topology-aware
     mapping on a sharing-heavy kernel (the paper's section 5 remark). *)
  let p = fig5_program 512 in
  let nest = List.hd (Program.parallel_nests p) in
  let d = Dynamic_sched.run ~machine p in
  check_int "all accesses" (Nest.trip_count nest * 4) d.Stats.total_accesses;
  (* Dispatch overhead is monotone: a costlier queue pull can only
     slow execution down. *)
  let cheap = Dynamic_sched.run ~steal_cost:10 ~machine p in
  let dear = Dynamic_sched.run ~steal_cost:5000 ~machine p in
  check_bool "steal cost is paid" true
    (dear.Stats.cycles > cheap.Stats.cycles)

let test_scheme_names () =
  Alcotest.(check (list string))
    "names"
    [ "Base"; "Base+"; "Local"; "TopologyAware"; "Combined" ]
    (List.map Mapping.scheme_name Mapping.all_schemes)

(* --- Tuning knobs: degenerate weights, validation, tile bound --------- *)

let test_degenerate_weights () =
  let _, grouping = groups_of (fig5_program 256) in
  let groups = grouping.Tags.groups in
  let assignment = Distribute.run machine groups in
  let dg = Dep_graph.create (Array.length groups) in
  let ids s =
    Array.to_list
      (Array.map (List.map (fun g -> g.Iter_group.id)) (Schedule.per_core s))
  in
  List.iter
    (fun (alpha, beta) ->
      let s1 = Schedule.run ~alpha ~beta machine assignment dg in
      let s2 = Schedule.run ~alpha ~beta machine assignment dg in
      Alcotest.(check (list (list int)))
        (Printf.sprintf "deterministic at a=%g b=%g" alpha beta)
        (ids s1) (ids s2);
      check_bool "deps respected" true (Schedule.respects_deps s1 dg);
      Array.iteri
        (fun c gs ->
          check_int
            (Printf.sprintf "core %d iterations at a=%g b=%g" c alpha beta)
            (total_groups_iters assignment.(c))
            (total_groups_iters gs))
        (Schedule.per_core s1))
    [ (0., Schedule.default_beta); (Schedule.default_alpha, 0.); (0., 0.) ]

let test_zero_weights_tiebreak () =
  (* With a = b = 0 every candidate scores 0, so the scheduler's
     tie-break — the smallest [Iterset.min_key], i.e. sequential
     iteration order — fully determines each pick: within every round
     each core's groups appear in ascending min-key order.  (The very
     first pick of a domain's lead core in round 0 uses the
     fewest-ones rule instead, so it is excluded.) *)
  let _, grouping = groups_of (fig5_program 256) in
  let groups = grouping.Tags.groups in
  let assignment = Distribute.run machine groups in
  let dg = Dep_graph.create (Array.length groups) in
  let s = Schedule.run ~alpha:0. ~beta:0. machine assignment dg in
  check_bool "scheduled something" true (s.Schedule.rounds <> []);
  List.iteri
    (fun r round ->
      Array.iteri
        (fun c gs ->
          let keys =
            List.map (fun g -> Iterset.min_key g.Iter_group.iters) gs
          in
          let keys = if r = 0 then match keys with [] -> [] | _ :: t -> t
                     else keys in
          check_bool
            (Printf.sprintf "round %d core %d picks in min-key order" r c)
            true
            (keys = List.sort compare keys))
        round)
    s.Schedule.rounds

let test_params_validation () =
  check_bool "default params valid" true
    (Mapping.validate_params Mapping.default_params = Ok ());
  let p = fig5_program 64 in
  let rejects msg params =
    Alcotest.check_raises msg (Invalid_argument ("Mapping.compile: " ^ msg))
      (fun () -> ignore (Mapping.compile ~params Mapping.Combined ~machine p))
  in
  rejects "alpha must be a non-negative number (got -1)"
    { Mapping.default_params with alpha = -1. };
  rejects "alpha must be a non-negative number (got nan)"
    { Mapping.default_params with alpha = Float.nan };
  rejects "beta must be a non-negative number (got -0.5)"
    { Mapping.default_params with beta = -0.5 };
  rejects "balance_threshold must be positive (got 0)"
    { Mapping.default_params with balance_threshold = 0. };
  rejects "balance_threshold must be positive (got -2)"
    { Mapping.default_params with balance_threshold = -2. };
  rejects "block_size must be positive (got 0)"
    { Mapping.default_params with block_size = 0 };
  rejects "tile_edge must be positive (got 0)"
    { Mapping.default_params with tile_edge = Some 0 };
  rejects "tile_edge must be positive (got -8)"
    { Mapping.default_params with tile_edge = Some (-8) }

let prop_choose_tile_footprint =
  (* d-deep nest of n^d iterations touching [nrefs] distinct arrays:
     the chosen edge must keep the tile footprint within half the L1
     (or a single iteration when even that does not fit), including
     the degenerate 1-point nest. *)
  let arb =
    QCheck.(
      quad (int_range 1 3) (int_range 1 9) (int_range 64 32768)
        (int_range 1 6))
  in
  QCheck.Test.make ~name:"choose_tile stays within the L1 footprint bound"
    ~count:300 arb
    (fun (d, n, l1_bytes, nrefs) ->
      let subs = Array.init d (fun i -> Affine.var d i) in
      let names = List.init nrefs (fun i -> Printf.sprintf "A%d" i) in
      let refs =
        List.mapi
          (fun i name ->
            Reference.make ~array_name:name ~subs
              ~kind:(if i = 0 then Reference.Write else Reference.Read))
          names
      in
      let body =
        [
          Stmt.assign (List.hd refs)
            (List.fold_left
               (fun e r -> Expr.add e (Expr.load r))
               (Expr.load (List.hd refs))
               (List.tl refs));
        ]
      in
      let nest =
        Nest.make ~name:"q"
          ~index_names:(Array.init d (fun i -> Printf.sprintf "i%d" i))
          ~domain:(Domain.box (Array.make d (0, n - 1)))
          ~body ~parallel:true
      in
      let arrays =
        List.map
          (fun name -> Array_decl.make ~name ~dims:(Array.make d n) ~elem_size:8)
          names
      in
      let p = Program.make ~name:"q" ~arrays ~nests:[ nest ] in
      let layout = Layout.of_program ~align:64 p in
      let per_iter =
        List.fold_left
          (fun acc r ->
            acc + (Layout.decl layout r.Reference.array_name).Array_decl.elem_size)
          0 (Nest.refs nest)
      in
      let t = Tiling.choose_tile ~l1_bytes layout nest in
      let rec ipow b e = if e = 0 then 1 else b * ipow b (e - 1) in
      t >= 1 && t <= 256
      && per_iter * ipow t d <= max (l1_bytes / 2) per_iter)

let () =
  Alcotest.run "core"
    [
      ("affinity", [ Alcotest.test_case "graph" `Quick test_affinity_graph ]);
      ( "distribute",
        [
          Alcotest.test_case "partition preserved" `Quick
            test_distribute_partition_preserved;
          Alcotest.test_case "balanced" `Quick test_distribute_balanced;
          Alcotest.test_case "cluster_into" `Quick test_cluster_into;
          Alcotest.test_case "weights" `Quick test_balance_respects_weights;
          Alcotest.test_case "affinity quality" `Quick
            test_distribute_affinity_quality;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "preserves groups" `Quick
            test_schedule_preserves_groups;
          Alcotest.test_case "respects deps" `Quick test_schedule_respects_deps;
          Alcotest.test_case "quantum" `Quick test_schedule_quantum;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "block partition" `Quick test_block_partition;
          Alcotest.test_case "default assignment" `Quick test_default_assignment;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "permute stride" `Quick test_permute_stride;
          Alcotest.test_case "tiling apply" `Quick test_tiling_apply;
          Alcotest.test_case "choose tile" `Quick test_choose_tile_bounds;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "schemes cover" `Quick test_compile_all_schemes_cover;
          Alcotest.test_case "deterministic" `Quick test_simulate_deterministic;
          Alcotest.test_case "streamed == dense" `Quick
            test_stream_compile_matches_dense;
          Alcotest.test_case "port" `Quick test_port_shapes;
          Alcotest.test_case "serial" `Quick test_serial_baseline;
          Alcotest.test_case "fig5 wins" `Quick test_topology_beats_base_on_fig5;
        ] );
      ( "optimal",
        [ Alcotest.test_case "not worse" `Quick test_optimal_not_worse ] );
      ( "behaviour",
        [
          Alcotest.test_case "alpha/beta extremes" `Quick
            test_alpha_beta_extremes;
          Alcotest.test_case "port oversubscription" `Quick
            test_port_oversubscription;
          Alcotest.test_case "serial nest" `Quick test_serial_nest_runs_on_core0;
          Alcotest.test_case "auto block" `Quick test_auto_block;
          Alcotest.test_case "map topo != machine" `Quick
            test_map_topo_differs_from_machine;
          Alcotest.test_case "base+ sanity" `Quick
            test_base_plus_never_beaten_by_plain_permutation;
          Alcotest.test_case "dynamic scheduling" `Quick test_dynamic_sched;
          Alcotest.test_case "scheme names" `Quick test_scheme_names;
        ] );
      ( "tuning knobs",
        [
          Alcotest.test_case "degenerate weights" `Quick
            test_degenerate_weights;
          Alcotest.test_case "zero-weight tiebreak" `Quick
            test_zero_weights_tiebreak;
          Alcotest.test_case "params validation" `Quick test_params_validation;
          QCheck_alcotest.to_alcotest prop_choose_tile_footprint;
        ] );
    ]
