(* The paper's worked example, end to end (§3.5.4, Figures 9-11).

   Machine: Figure 9 — four cores, two L2s shared by pairs, one L3
   (root).  Program: Figure 5 — B[j] = B[j] + B[2k+j] + B[j-2k] with
   twelve data blocks.  The iterations form eight groups whose tags are
   listed in Figure 10(a); groups with even first-block (tags
   1010100000.., 0010101000.., ...) share blocks only with each other,
   likewise the odd chain.  Clustering for the two L2s must separate
   the two chains (Figure 10(b)/(c)): cores under one L2 receive
   groups of one parity. *)

open Ctam_poly
open Ctam_ir
open Ctam_arch
open Ctam_blocks
open Ctam_deps
open Ctam_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Figure 9: 4 cores, L1 per core, L2 per pair, L3 root. *)
let figure9 =
  let l1 id =
    Topology.Cache
      ( {
          Topology.cache_name = Printf.sprintf "L1#%d" id;
          level = 1;
          size_bytes = 1024;
          assoc = 8;
          line = 64;
          latency = 4;
          policy = Policy.Lru;
        },
        [ Topology.Core id ] )
  in
  let l2 p cores =
    Topology.Cache
      ( {
          Topology.cache_name = Printf.sprintf "L2#%d" p;
          level = 2;
          size_bytes = 16 * 1024;
          assoc = 8;
          line = 64;
          latency = 12;
          policy = Policy.Lru;
        },
        cores )
  in
  Topology.make ~name:"Figure9" ~clock_ghz:1. ~mem_latency:120
    [
      Topology.Cache
        ( {
            Topology.cache_name = "L3#0";
            level = 3;
            size_bytes = 64 * 1024;
            assoc = 16;
            line = 64;
            latency = 30;
            policy = Policy.Lru;
          },
          [ l2 0 [ l1 0; l1 1 ]; l2 1 [ l1 2; l1 3 ] ] );
    ]

let k = 512 (* elements per data block (x8 bytes = 4KB blocks) *)

let fig5_program =
  let m = 12 * k in
  let d = 1 in
  let j = Affine.var d 0 in
  let b sub =
    Reference.make ~array_name:"B" ~subs:[| sub |] ~kind:Reference.Read
  in
  let wr = Reference.make ~array_name:"B" ~subs:[| j |] ~kind:Reference.Write in
  let nest =
    Nest.make ~name:"fig5" ~index_names:[| "j" |]
      ~domain:(Domain.box [| (2 * k, m - (2 * k) - 1) |])
      ~body:
        [
          Stmt.assign wr
            (Expr.add
               (Expr.add (Expr.load (b j))
                  (Expr.load (b (Affine.add_const (2 * k) j))))
               (Expr.load (b (Affine.add_const (-2 * k) j))));
        ]
      ~parallel:true
  in
  Program.make ~name:"fig5"
    ~arrays:[ Array_decl.make ~name:"B" ~dims:[| m |] ~elem_size:8 ]
    ~nests:[ nest ]

let grouping () =
  let nest = List.hd fig5_program.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:(k * 8) ~line:64 fig5_program in
  (nest, bm, Tags.group nest bm)

(* Figure 10(a): the eight tags, j-range by j-range. *)
let test_figure10a_tags () =
  let _, bm, g = grouping () in
  check_int "twelve blocks" 12 (Block_map.num_blocks bm);
  check_int "eight groups" 8 (Array.length g.Tags.groups);
  let expected =
    [|
      "101010000000";
      "010101000000";
      "001010100000";
      "000101010000";
      "000010101000";
      "000001010100";
      "000000101010";
      "000000010101";
    |]
  in
  Array.iteri
    (fun i grp ->
      Alcotest.(check string)
        (Printf.sprintf "tag of group %d" i)
        expected.(i)
        (Bitset.to_string grp.Iter_group.tag))
    g.Tags.groups

(* The two parity chains share no blocks across each other. *)
let test_parity_chains_disjoint () =
  let _, _, g = grouping () in
  Array.iteri
    (fun i gi ->
      Array.iteri
        (fun j gj ->
          if i < j then begin
            let same_parity = (i - j) mod 2 = 0 in
            let share = Iter_group.dot gi gj > 0 in
            if not same_parity then
              check_bool
                (Printf.sprintf "groups %d,%d (different chains) disjoint" i j)
                false share
          end)
        g.Tags.groups)
    g.Tags.groups

(* Figure 10(b): clustering for the two L2s separates the chains. *)
let test_figure10b_l2_clustering () =
  let _, _, g = grouping () in
  let assignment = Distribute.run figure9 g.Tags.groups in
  check_int "four cores" 4 (Array.length assignment);
  (* Parities of groups on each L2 pair. *)
  let parity_set cores =
    List.concat_map
      (fun c -> List.map (fun grp -> grp.Iter_group.id mod 2) assignment.(c))
      cores
    |> List.sort_uniq compare
  in
  let pair0 = parity_set [ 0; 1 ] and pair1 = parity_set [ 2; 3 ] in
  (* Each pair holds groups of a single parity, and the two pairs hold
     different parities (which pair gets which chain is arbitrary). *)
  check_int "pair0 single parity" 1 (List.length pair0);
  check_int "pair1 single parity" 1 (List.length pair1);
  check_bool "opposite parities" true (pair0 <> pair1)

(* Load balancing: every core ends up with two groups' worth of
   iterations (the example's final assignment gives 2 groups/core). *)
let test_figure11_balance () =
  let _, _, g = grouping () in
  let assignment = Distribute.run figure9 g.Tags.groups in
  let sizes =
    Array.map
      (fun gs -> List.fold_left (fun a x -> a + Iter_group.size x) 0 gs)
      assignment
  in
  let total = Array.fold_left ( + ) 0 sizes in
  check_int "all iterations" (8 * k) total;
  Array.iteri
    (fun c s ->
      check_bool
        (Printf.sprintf "core %d balanced" c)
        true
        (abs (s - (total / 4)) <= total / 20))
    sizes

(* Scheduling: the Figure 5 loop carries dependences (stride 2k); the
   final schedule must respect them across the rounds. *)
let test_figure11_schedule_legal () =
  let _, _, g = grouping () in
  let dg0 = Group_deps.compute g in
  check_bool "fig5 carries dependences" true (not (Dep_graph.is_empty dg0));
  let groups, dag = Group_deps.merge_cycles g dg0 in
  let assignment = Distribute.run figure9 groups in
  let sched = Schedule.run figure9 assignment dag in
  check_bool "legal" true (Schedule.respects_deps sched dag);
  (* Within each chain, group 2i+2 depends on group 2i (B[j-2k] reads
     what an earlier group wrote): at least two rounds are needed. *)
  check_bool "multiple rounds" true (Schedule.num_rounds sched >= 2)

(* End to end: on the example machine, the topology-aware mapping beats
   the synchronized default distribution. *)
let test_example_end_to_end () =
  let base = Mapping.run Mapping.Base ~machine:figure9 fig5_program in
  let topo = Mapping.run Mapping.Topology_aware ~machine:figure9 fig5_program in
  check_bool "topology-aware wins on the worked example" true
    (topo.Ctam_cachesim.Stats.cycles < base.Ctam_cachesim.Stats.cycles)

let () =
  Alcotest.run "paper_example"
    [
      ( "figure 10",
        [
          Alcotest.test_case "tags (10a)" `Quick test_figure10a_tags;
          Alcotest.test_case "chains disjoint" `Quick test_parity_chains_disjoint;
          Alcotest.test_case "L2 clustering (10b)" `Quick
            test_figure10b_l2_clustering;
        ] );
      ( "figure 11",
        [
          Alcotest.test_case "balance" `Quick test_figure11_balance;
          Alcotest.test_case "legal schedule" `Quick test_figure11_schedule_legal;
          Alcotest.test_case "end to end" `Quick test_example_end_to_end;
        ] );
    ]
