(* Tests for the DSL frontend: lexer, parser, lowering diagnostics. *)

open Ctam_frontend
open Ctam_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let contains ~affix s = Astring.String.is_infix ~affix s

let sample =
  {|
program demo;
double A[100][102];
double B[210];

// the Figure 4 loop of the paper
parallel for (i1 = 0; i1 < 99; i1++)
  for (i2 = 2; i2 < 102; i2++)
    A[i1+1][i2-1] = A[i1][i2-2] + 0.5;

for (j = 4; j <= 200; j++)
  B[j] = B[j] + B[2*j - 190] + 1.0;
|}

(* --- lexer ---------------------------------------------------------- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "for (i = 0; i < 10; i++) A[i] = 0.5;" in
  let kinds = List.map (fun t -> t.Token.tok) toks in
  check_bool "starts with for" true (List.hd kinds = Token.KW_FOR);
  check_bool "has plusplus" true (List.mem Token.PLUSPLUS kinds);
  check_bool "has float" true (List.mem (Token.FLOAT 0.5) kinds);
  check_bool "ends with EOF" true
    (List.nth kinds (List.length kinds - 1) = Token.EOF)

let test_lexer_comments () =
  let toks = Lexer.tokenize "program /* block\ncomment */ p; // line\n" in
  check_int "token count" 4 (List.length toks) (* program, p, ;, EOF *)

let test_lexer_positions () =
  let toks = Lexer.tokenize "program\n  p;" in
  match toks with
  | _ :: { tok = Token.IDENT "p"; pos } :: _ ->
      check_int "line" 2 pos.Token.line;
      check_int "col" 3 pos.Token.col
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_errors () =
  check_bool "illegal char raises" true
    (try
       ignore (Lexer.tokenize "program p; @");
       false
     with Parse_error.Error (_, _) -> true);
  check_bool "unterminated comment" true
    (try
       ignore (Lexer.tokenize "/* oops");
       false
     with Parse_error.Error (_, _) -> true)

let test_lexer_malformed_number () =
  (* Regression: [123abc] used to lex as [INT 123; IDENT abc], silently
     mangling a typo like [10x] into two tokens the parser might
     accept.  It must be a positioned error at the number. *)
  (match Lexer.tokenize "for (i = 0; i < 123abc; i++) A[i] = 0.5;" with
  | _ -> Alcotest.fail "123abc must not tokenize"
  | exception Parse_error.Error (pos, msg) ->
      check_int "error line" 1 pos.Token.line;
      check_int "error col" 17 pos.Token.col;
      check_bool "message names the literal" true
        (Astring.String.is_infix ~affix:"123" msg));
  (* Same for a float literal glued to a letter. *)
  (match Lexer.tokenize "x = 1.5e;" with
  | _ -> Alcotest.fail "1.5e must not tokenize"
  | exception Parse_error.Error (_, _) -> ());
  (* A number legitimately followed by an operator still lexes. *)
  let toks = Lexer.tokenize "A[2*i]" in
  check_bool "2*i fine" true
    (List.exists (fun t -> t.Token.tok = Token.INT 2) toks)

(* --- parser --------------------------------------------------------- *)

let test_parse_program () =
  let ast = Parser.parse sample in
  Alcotest.(check string) "name" "demo" ast.Ast.prog_name;
  check_int "decls" 2 (List.length ast.Ast.decls);
  check_int "nests" 2 (List.length ast.Ast.nests);
  let n0 = List.hd ast.Ast.nests in
  check_bool "parallel flag" true n0.Ast.nest_parallel;
  let n1 = List.nth ast.Ast.nests 1 in
  check_bool "second not parallel" false n1.Ast.nest_parallel

let expect_syntax_error src =
  try
    ignore (Parser.parse src);
    Alcotest.fail "expected syntax error"
  with Parse_error.Error (_, _) -> ()

let test_parse_errors () =
  expect_syntax_error "program; double A[4];";
  expect_syntax_error "program p; double A; for (i=0;i<4;i++) A[i]=0;";
  expect_syntax_error "program p; double A[4]; for (i=0;j<4;i++) A[i]=0;";
  expect_syntax_error "program p; double A[4]; for (i=0;i<4;j++) A[i]=0;";
  expect_syntax_error "program p; double A[4];";
  expect_syntax_error "program p; double A[4]; for (i=0;i<4;i++) { }"

(* --- lowering ------------------------------------------------------- *)

let test_lower_basic () =
  let p = Lower.compile sample in
  check_int "arrays" 2 (List.length p.Program.arrays);
  check_int "nests" 2 (List.length p.Program.nests);
  let n0 = List.hd p.Program.nests in
  check_int "depth" 2 (Nest.depth n0);
  check_int "trip count" (99 * 100) (Nest.trip_count n0);
  check_bool "parallel" true n0.Nest.parallel;
  let writes = List.filter Reference.is_write (Nest.refs n0) in
  check_int "one write" 1 (List.length writes);
  Alcotest.(check (array int))
    "write target" [| 5; 6 |]
    (Reference.target (List.hd writes) [| 4; 7 |])

let expect_lower_error src =
  try
    ignore (Lower.compile src);
    Alcotest.fail "expected lowering error"
  with Parse_error.Error (_, _) -> ()

let test_lower_errors () =
  expect_lower_error
    "program p; double A[10][10]; for (i=0;i<10;i++) for (j=0;j<10;j++) A[i*j][j] = 1.0;";
  expect_lower_error "program p; double A[10]; for (i=0;i<10;i++) A[k] = 1.0;";
  expect_lower_error
    "program p; double A[10][10]; for (i=0;i<j;i++) for (j=0;j<10;j++) A[i][j] = 1.0;";
  expect_lower_error
    "program p; double A[10][10]; for (i=0;i<10;i++) for (i=0;i<10;i++) A[i][i] = 1.0;";
  expect_lower_error "program p; double A[10]; for (i=0;i<10;i++) Z[i] = 1.0;";
  expect_lower_error
    "program p; double A[10]; for (i=0;i<10;i++) A[i][i] = 1.0;"

let test_lower_triangular () =
  let p =
    Lower.compile
      "program t; double A[10][10]; for (i=0;i<10;i++) for (j=0;j<=i;j++) A[i][j] = 1.0;"
  in
  let n = List.hd p.Program.nests in
  check_int "triangular trip" 55 (Nest.trip_count n)

let test_lower_affine_arith () =
  let p =
    Lower.compile
      "program a; double A[100]; for (i=0;i<20;i++) A[2*i + 3] = A[(i+1)*2] + 1.0;"
  in
  let n = List.hd p.Program.nests in
  let refs = Nest.refs n in
  let read = List.hd (List.filter (fun r -> not (Reference.is_write r)) refs) in
  Alcotest.(check (array int)) "(i+1)*2 at i=4" [| 10 |] (Reference.target read [| 4 |])

let test_error_render () =
  let src = "program p; double A[10]; for (i=0;i<10;i++) A[k] = 1.0;" in
  try
    ignore (Lower.compile src);
    Alcotest.fail "expected error"
  with Parse_error.Error (pos, msg) ->
    let rendered = Parse_error.render ~source:src pos msg in
    check_bool "mentions k" true (contains ~affix:"'k'" rendered);
    check_bool "has caret" true (contains ~affix:"^" rendered)

let test_lower_matches_builder () =
  let src =
    "program g; double U[12][12]; double V[12][12];\n\
     parallel for (i = 1; i <= 10; i++) for (j = 1; j <= 10; j++)\n\
     V[i][j] = U[i-1][j] + U[i+1][j] + U[i][j-1] + U[i][j+1];"
  in
  let p = Lower.compile src in
  let n = List.hd p.Program.nests in
  check_int "trip" 100 (Nest.trip_count n);
  check_int "refs" 5 (List.length (Nest.refs n))

(* --- Unparse ---------------------------------------------------------- *)

let structurally_equal p1 p2 =
  let open Ctam_ir in
  List.length p1.Program.arrays = List.length p2.Program.arrays
  && List.for_all2 Array_decl.equal p1.Program.arrays p2.Program.arrays
  && List.length p1.Program.nests = List.length p2.Program.nests
  && List.for_all2
       (fun n1 n2 ->
         n1.Nest.parallel = n2.Nest.parallel
         && Nest.trip_count n1 = Nest.trip_count n2
         && List.length (Nest.refs n1) = List.length (Nest.refs n2)
         && List.for_all2 Reference.equal (Nest.refs n1) (Nest.refs n2))
       p1.Program.nests p2.Program.nests

let test_unparse_roundtrip_suite () =
  List.iter
    (fun k ->
      let p = Ctam_workloads.Kernel.small_program k in
      let text = Unparse.program p in
      let p' = Lower.compile text in
      check_bool (k.Ctam_workloads.Kernel.name ^ " round-trips") true
        (structurally_equal p p'))
    Ctam_workloads.Suite.all

let test_unparse_triangular () =
  let src =
    "program t; double A[12][12];\n\
     parallel for (i = 0; i < 10; i++) for (j = 0; j <= i; j++) A[i][j] = 1.0;"
  in
  let p = Lower.compile src in
  let p' = Lower.compile (Unparse.program p) in
  check_bool "triangular round-trips" true (structurally_equal p p')

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "malformed number" `Quick
            test_lexer_malformed_number;
        ] );
      ( "parser",
        [
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
        ] );
      ( "lower",
        [
          Alcotest.test_case "basic" `Quick test_lower_basic;
          Alcotest.test_case "errors" `Quick test_lower_errors;
          Alcotest.test_case "triangular" `Quick test_lower_triangular;
          Alcotest.test_case "affine arithmetic" `Quick test_lower_affine_arith;
          Alcotest.test_case "error rendering" `Quick test_error_render;
          Alcotest.test_case "builder equivalence" `Quick test_lower_matches_builder;
        ] );
      ( "unparse",
        [
          Alcotest.test_case "suite round-trip" `Quick test_unparse_roundtrip_suite;
          Alcotest.test_case "triangular round-trip" `Quick test_unparse_triangular;
        ] );
    ]
