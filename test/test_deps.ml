(* Tests for dependence analysis: GCD/Banerjee tests, exact detection,
   group dependence graphs, SCC condensation. *)

open Ctam_poly
open Ctam_ir
open Ctam_blocks
open Ctam_deps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_nest ~n body_refs =
  let stmts =
    match body_refs with
    | w :: reads ->
        [ Stmt.assign w
            (List.fold_left
               (fun acc r -> Expr.add acc (Expr.load r))
               (Expr.const 0.) reads);
        ]
    | [] -> assert false
  in
  (* [1, n-2] keeps +/-1 neighbour references in bounds. *)
  Nest.make ~name:"t" ~index_names:[| "i" |]
    ~domain:(Domain.box [| (1, n - 2) |])
    ~body:stmts ~parallel:true

let rd name sub = Reference.make ~array_name:name ~subs:[| sub |] ~kind:Reference.Read
let wr name sub = Reference.make ~array_name:name ~subs:[| sub |] ~kind:Reference.Write

let i1 = Affine.var 1 0

(* --- pairwise tests -------------------------------------------------- *)

let test_gcd () =
  (* 2i = 2i' + 1 has no integer solutions. *)
  let f = Affine.make [| 2 |] 0 and g = Affine.make [| 2 |] 1 in
  check_bool "parity excludes" true (Dep_test.gcd_test f g = Dep_test.Independent);
  (* 2i = 4i' + 2 is solvable. *)
  let g2 = Affine.make [| 4 |] 2 in
  check_bool "solvable" true (Dep_test.gcd_test f g2 = Dep_test.MaybeDependent);
  (* Constants: 3 vs 3 collide, 3 vs 4 don't. *)
  check_bool "const equal" true
    (Dep_test.gcd_test (Affine.const 1 3) (Affine.const 1 3) = Dep_test.MaybeDependent);
  check_bool "const differ" true
    (Dep_test.gcd_test (Affine.const 1 3) (Affine.const 1 4) = Dep_test.Independent)

let test_banerjee () =
  let dom = Domain.box [| (0, 9) |] in
  (* i and i' + 100 can never meet over [0,9]. *)
  check_bool "ranges disjoint" true
    (Dep_test.banerjee_test dom i1 (Affine.add_const 100 i1) = Dep_test.Independent);
  check_bool "ranges overlap" true
    (Dep_test.banerjee_test dom i1 (Affine.add_const 5 i1) = Dep_test.MaybeDependent)

let test_pair_different_arrays () =
  let dom = Domain.box [| (0, 9) |] in
  check_bool "different arrays independent" true
    (Dep_test.pair_test dom (wr "A" i1) (rd "B" i1) = Dep_test.Independent)

let test_pair_identical_injective () =
  let dom = Domain.box [| (0, 9) |] in
  (* A[i] written and read at the same iteration only: no carried dep. *)
  check_bool "identical injective" true
    (Dep_test.pair_test dom (wr "A" i1) (rd "A" i1) = Dep_test.Independent)

let test_pair_shifted () =
  let dom = Domain.box [| (0, 9) |] in
  (* A[i] written, A[i+1] read: carried dependence possible. *)
  check_bool "shifted dependent" true
    (Dep_test.pair_test dom (wr "A" i1) (rd "A" (Affine.add_const 1 i1))
     = Dep_test.MaybeDependent)

let test_omega_exactness () =
  let dom = Domain.box [| (0, 9) |] in
  (* A[2i] write vs A[2i+1] read: no collisions at all. *)
  check_bool "parity" true
    (Dep_test.omega_pair_test dom
       (wr "A" (Affine.make [| 2 |] 0))
       (rd "A" (Affine.make [| 2 |] 1))
    = Dep_test.Independent);
  (* A[i] vs A[i]: only same-iteration collisions -> independent. *)
  check_bool "identical" true
    (Dep_test.omega_pair_test dom (wr "A" i1) (rd "A" i1)
    = Dep_test.Independent);
  (* A[i] vs A[i+20] over [0,9]: ranges disjoint. *)
  check_bool "far shift" true
    (Dep_test.omega_pair_test dom (wr "A" i1) (rd "A" (Affine.add_const 20 i1))
    = Dep_test.Independent);
  (* A[i] vs A[i+1]: carried. *)
  check_bool "near shift" true
    (Dep_test.omega_pair_test dom (wr "A" i1) (rd "A" (Affine.add_const 1 i1))
    = Dep_test.MaybeDependent)

let test_omega_2d () =
  let dom = Domain.box [| (0, 5); (0, 5) |] in
  let d = 2 in
  let i = Affine.var d 0 and j = Affine.var d 1 in
  let w = Reference.make ~array_name:"A" ~subs:[| i; j |] ~kind:Reference.Write in
  (* A[i][j] vs A[i][j+1]: carried along j. *)
  let r =
    Reference.make ~array_name:"A"
      ~subs:[| i; Affine.add_const 1 j |]
      ~kind:Reference.Read
  in
  check_bool "2d shifted" true
    (Dep_test.omega_pair_test dom w r = Dep_test.MaybeDependent);
  (* A[i][j] vs A[i+10][j]: out of range in the i direction. *)
  let far =
    Reference.make ~array_name:"A"
      ~subs:[| Affine.add_const 10 i; j |]
      ~kind:Reference.Read
  in
  check_bool "2d far" true
    (Dep_test.omega_pair_test dom w far = Dep_test.Independent)

let prop_omega_sound_vs_enumeration =
  (* If omega says Independent, exhaustive enumeration over a small
     domain must find no cross-iteration collision. *)
  QCheck.Test.make ~name:"omega independence is sound" ~count:100
    QCheck.(
      quad (int_range 1 3) (int_range (-4) 4) (int_range 1 3) (int_range (-4) 4))
    (fun (c1, k1, c2, k2) ->
      let dom = Domain.box [| (0, 7) |] in
      let f = Affine.make [| c1 |] (k1 + 16) in
      let g = Affine.make [| c2 |] (k2 + 16) in
      let w = Reference.make ~array_name:"A" ~subs:[| f |] ~kind:Reference.Write in
      let r = Reference.make ~array_name:"A" ~subs:[| g |] ~kind:Reference.Read in
      match Dep_test.omega_pair_test dom w r with
      | Dep_test.MaybeDependent -> true
      | Dep_test.Independent ->
          (* brute force: no i <> i' with f(i) = g(i') *)
          let collide = ref false in
          for i = 0 to 7 do
            for i' = 0 to 7 do
              if i <> i' && Affine.eval f [| i |] = Affine.eval g [| i' |] then
                collide := true
            done
          done;
          not !collide)

(* --- nest-level ------------------------------------------------------ *)

let layout_for arrays = Layout.make ~align:64 arrays

let test_nest_stencil_free () =
  (* B[i] = A[i-1] + A[i+1]: write and reads target different arrays. *)
  let nest =
    mk_nest ~n:16
      [ wr "B" i1; rd "A" (Affine.add_const (-1) i1); rd "A" (Affine.add_const 1 i1) ]
  in
  check_bool "conservative: free" false (Dep_test.nest_may_carry_deps nest);
  let layout =
    layout_for
      [
        Array_decl.make ~name:"A" ~dims:[| 32 |] ~elem_size:8;
        Array_decl.make ~name:"B" ~dims:[| 32 |] ~elem_size:8;
      ]
  in
  check_bool "exact: free" false (Dep_test.nest_carries_deps_exact nest layout)

let test_nest_carried () =
  (* A[i] = A[i-1]: loop-carried. *)
  let nest = mk_nest ~n:16 [ wr "A" i1; rd "A" (Affine.add_const (-1) i1) ] in
  check_bool "conservative: may" true (Dep_test.nest_may_carry_deps nest);
  let layout = layout_for [ Array_decl.make ~name:"A" ~dims:[| 32 |] ~elem_size:8 ] in
  check_bool "exact: carried" true (Dep_test.nest_carries_deps_exact nest layout)

let test_exact_no_false_positive_on_reads () =
  (* Reads alone never make a dependence. *)
  let nest = mk_nest ~n:16 [ wr "B" i1; rd "A" i1; rd "A" (Affine.add_const 1 i1) ] in
  let layout =
    layout_for
      [
        Array_decl.make ~name:"A" ~dims:[| 32 |] ~elem_size:8;
        Array_decl.make ~name:"B" ~dims:[| 32 |] ~elem_size:8;
      ]
  in
  check_bool "read sharing is not a dep" false
    (Dep_test.nest_carries_deps_exact nest layout)

(* --- Dep_graph ------------------------------------------------------- *)

let test_graph_basics () =
  let g = Dep_graph.of_edges 4 [ (0, 1); (1, 2); (0, 2) ] in
  check_int "edges" 3 (Dep_graph.num_edges g);
  check_bool "has" true (Dep_graph.has_edge g 0 1);
  check_bool "not has" false (Dep_graph.has_edge g 1 0);
  Alcotest.(check (list int)) "preds" [ 0; 1 ] (Dep_graph.preds g 2);
  Alcotest.(check (list int)) "succs" [ 1; 2 ] (Dep_graph.succs g 0);
  (* Any topological order is acceptable; check the constraints. *)
  let topo = Dep_graph.topo_order g in
  let pos v = Option.get (List.find_index (fun x -> x = v) topo) in
  check_bool "0 before 1" true (pos 0 < pos 1);
  check_bool "1 before 2" true (pos 1 < pos 2);
  check_int "all nodes" 4 (List.length topo)

let test_graph_scc () =
  (* 0 -> 1 -> 2 -> 0 is a cycle; 3 hangs off it. *)
  let g = Dep_graph.of_edges 4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let comp, k = Dep_graph.scc g in
  check_int "two components" 2 k;
  check_bool "cycle together" true (comp.(0) = comp.(1) && comp.(1) = comp.(2));
  check_bool "3 alone" true (comp.(3) <> comp.(0));
  let _, dag = Dep_graph.condense g in
  check_int "condensed nodes" 2 (Dep_graph.num_nodes dag);
  check_int "condensed edges" 1 (Dep_graph.num_edges dag);
  Alcotest.(check (list int)) "dag topo is sound" (Dep_graph.topo_order dag)
    (Dep_graph.topo_order dag)

let test_topo_rejects_cycle () =
  let g = Dep_graph.of_edges 2 [ (0, 1); (1, 0) ] in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Dep_graph.topo_order: graph has a cycle") (fun () ->
      ignore (Dep_graph.topo_order g))

(* --- Group_deps ------------------------------------------------------ *)

(* A chain A[i] = A[i-g]: groups (blocks) depend forward with stride. *)
let chain_program ~n ~g =
  let d = 1 in
  let i = Affine.var d 0 in
  let nest =
    Nest.make ~name:"chain" ~index_names:[| "i" |]
      ~domain:(Domain.box [| (g, n - 1) |])
      ~body:
        [
          Stmt.assign
            (Reference.make ~array_name:"A" ~subs:[| i |] ~kind:Reference.Write)
            (Expr.load
               (Reference.make ~array_name:"A"
                  ~subs:[| Affine.add_const (-g) i |]
                  ~kind:Reference.Read));
        ]
      ~parallel:true
  in
  Program.make ~name:"chain"
    ~arrays:[ Array_decl.make ~name:"A" ~dims:[| n |] ~elem_size:8 ]
    ~nests:[ nest ]

let test_group_deps_chain () =
  let n = 512 and g = 128 in
  let p = chain_program ~n ~g in
  let nest = List.hd p.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:(128 * 8) ~line:64 p in
  let grouping = Tags.group nest bm in
  let dg = Group_deps.compute grouping in
  check_bool "has edges" true (Dep_graph.num_edges dg > 0);
  (* Must be acyclic already (forward dependences only). *)
  let merged, dag = Group_deps.merge_cycles grouping dg in
  check_int "no cycles to merge" (Array.length grouping.Tags.groups)
    (Array.length merged);
  (* Every edge respects iteration order of the group minima. *)
  List.iter
    (fun (a, b) ->
      check_bool "edges point forward" true
        (Ctam_poly.Iterset.min_key merged.(a).Iter_group.iters
        < Ctam_poly.Iterset.min_key merged.(b).Iter_group.iters))
    (Dep_graph.edges dag)

let test_group_deps_free_nest_empty () =
  let p =
    Program.make ~name:"free"
      ~arrays:
        [
          Array_decl.make ~name:"A" ~dims:[| 64 |] ~elem_size:8;
          Array_decl.make ~name:"B" ~dims:[| 64 |] ~elem_size:8;
        ]
      ~nests:
        [
          mk_nest ~n:64 [ wr "B" i1; rd "A" i1 ];
        ]
  in
  let nest = List.hd p.Program.nests in
  let bm, _ = Block_map.for_program ~block_size:128 ~line:64 p in
  let grouping = Tags.group nest bm in
  check_bool "empty graph" true (Dep_graph.is_empty (Group_deps.compute grouping))

let test_dependent_fraction () =
  let g = Dep_graph.of_edges 4 [ (0, 1) ] in
  Alcotest.(check (float 1e-9)) "half the nodes" 0.5
    (Group_deps.dependent_fraction g)

let prop_scc_condensation_acyclic =
  let arb =
    QCheck.(
      pair (int_range 2 10)
        (list_of_size (Gen.int_range 0 30) (pair (int_range 0 9) (int_range 0 9))))
  in
  QCheck.Test.make ~name:"condensation is always acyclic" ~count:200 arb
    (fun (n, edges) ->
      let edges = List.filter (fun (a, b) -> a < n && b < n) edges in
      let g = Dep_graph.of_edges n edges in
      let _, dag = Dep_graph.condense g in
      match Dep_graph.topo_order dag with
      | _ -> true
      | exception Invalid_argument _ -> false)

let () =
  Alcotest.run "deps"
    [
      ( "pair tests",
        [
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "banerjee" `Quick test_banerjee;
          Alcotest.test_case "different arrays" `Quick test_pair_different_arrays;
          Alcotest.test_case "identical injective" `Quick
            test_pair_identical_injective;
          Alcotest.test_case "shifted" `Quick test_pair_shifted;
          Alcotest.test_case "omega exactness" `Quick test_omega_exactness;
          Alcotest.test_case "omega 2d" `Quick test_omega_2d;
          QCheck_alcotest.to_alcotest prop_omega_sound_vs_enumeration;
        ] );
      ( "nest tests",
        [
          Alcotest.test_case "stencil free" `Quick test_nest_stencil_free;
          Alcotest.test_case "carried" `Quick test_nest_carried;
          Alcotest.test_case "reads only" `Quick
            test_exact_no_false_positive_on_reads;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "scc" `Quick test_graph_scc;
          Alcotest.test_case "topo cycle" `Quick test_topo_rejects_cycle;
          QCheck_alcotest.to_alcotest prop_scc_condensation_acyclic;
        ] );
      ( "group deps",
        [
          Alcotest.test_case "chain" `Quick test_group_deps_chain;
          Alcotest.test_case "free nest" `Quick test_group_deps_free_nest_empty;
          Alcotest.test_case "dependent fraction" `Quick test_dependent_fraction;
        ] );
    ]
