(* Defining your own cache topology and mapping for it.

   The mapper is driven entirely by the topology tree, so exploring a
   hypothetical machine takes a few lines: here, an asymmetric 6-core
   part where one socket has a shared L2 and the other has private
   ones, a shape none of the built-in machines cover.

   Run with:  dune exec examples/custom_topology.exe *)

open Ctam_arch
open Ctam_core
open Ctam_cachesim

let kb n = n * 1024

let l1 id =
  Topology.Cache
    ( {
        Topology.cache_name = Printf.sprintf "L1#%d" id;
        level = 1;
        size_bytes = kb 2;
        assoc = 8;
        line = 64;
        latency = 4;
        policy = Policy.Lru;
      },
      [ Topology.Core id ] )

let l2 name size children =
  Topology.Cache
    ( {
        Topology.cache_name = name;
        level = 2;
        size_bytes = size;
        assoc = 8;
        line = 64;
        latency = 12;
        policy = Policy.Lru;
      },
      children )

let l3 name children =
  Topology.Cache
    ( {
        Topology.cache_name = name;
        level = 3;
        size_bytes = kb 768;
        assoc = 16;
        line = 64;
        latency = 34;
        policy = Policy.Lru;
      },
      children )

(* Socket 0: three cores behind one big shared L2.
   Socket 1: three cores with small private L2s under an L3. *)
let frankenstein =
  Topology.make ~name:"Frankenstein" ~clock_ghz:2.0 ~mem_latency:150
    [
      l2 "L2#shared" (kb 384) [ l1 0; l1 1; l1 2 ];
      l3 "L3#1" [ l2 "L2#3" (kb 64) [ l1 3 ];
                  l2 "L2#4" (kb 64) [ l1 4 ];
                  l2 "L2#5" (kb 64) [ l1 5 ] ];
    ]

let () =
  Fmt.pr "%a@." Topology.pp frankenstein;
  Fmt.pr "first shared level: %a@."
    Fmt.(option ~none:(any "none") int)
    (Topology.first_shared_level frankenstein);

  let program = Ctam_workloads.Kernel.program Ctam_workloads.Suite.cg in
  let base = ref 1 in
  Fmt.pr "@.%-15s %12s %8s@." "scheme" "cycles" "vs Base";
  List.iter
    (fun scheme ->
      let stats = Mapping.run scheme ~machine:frankenstein program in
      if scheme = Mapping.Base then base := stats.Stats.cycles;
      Fmt.pr "%-15s %12d %8.3f@."
        (Mapping.scheme_name scheme)
        stats.Stats.cycles
        (float_of_int stats.Stats.cycles /. float_of_int !base))
    Mapping.all_schemes
