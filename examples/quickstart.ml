(* Quickstart: write a loop nest in the paper's C-like DSL, map it onto
   Dunnington with every scheme, and compare simulated execution.

   Run with:  dune exec examples/quickstart.exe *)

open Ctam_core
open Ctam_cachesim

let source =
  {|
program quickstart;

double A[4][32770];
double p[32770];

// A scan that re-reads a large shared vector p on every row: the
// default distribution streams all of p through every core, while the
// topology-aware mapping gives cores sharing a cache the same slice.
parallel for (i = 0; i < 4; i++)
  for (j = 0; j < 32768; j++)
    A[i][j] = A[i][j] + p[j] + p[j+1];
|}

let () =
  (* 1. Parse and lower the DSL to the affine loop IR. *)
  let program =
    try Ctam_frontend.Lower.compile source
    with Ctam_frontend.Parse_error.Error (pos, msg) ->
      prerr_endline (Ctam_frontend.Parse_error.render ~source pos msg);
      exit 1
  in
  Fmt.pr "Compiled %s: %d arrays, %d nests, %d KB of data@.@."
    program.Ctam_ir.Program.name
    (List.length program.Ctam_ir.Program.arrays)
    (List.length program.Ctam_ir.Program.nests)
    (Ctam_ir.Program.data_bytes program / 1024);

  (* 2. Pick a machine: Dunnington at 1/16 capacity (see DESIGN.md). *)
  let machine = Ctam_arch.Machines.dunnington ~scale:16 () in
  Fmt.pr "%a@." Ctam_arch.Topology.pp machine;

  (* 3. Map with every scheme and simulate. *)
  let base = ref 1 in
  Fmt.pr "@.%-15s %12s %8s %8s@." "scheme" "cycles" "mem" "vs Base";
  List.iter
    (fun scheme ->
      let stats = Mapping.run scheme ~machine program in
      if scheme = Mapping.Base then base := stats.Stats.cycles;
      Fmt.pr "%-15s %12d %8d %8.3f@."
        (Mapping.scheme_name scheme)
        stats.Stats.cycles stats.Stats.mem_accesses
        (float_of_int stats.Stats.cycles /. float_of_int !base))
    Mapping.all_schemes;

  (* 4. Inspect the mapping itself. *)
  let compiled = Mapping.compile Mapping.Topology_aware ~machine program in
  List.iter
    (fun info ->
      Fmt.pr "@.nest %s: %d iteration groups (block %d B), %d rounds@."
        info.Mapping.nest_name info.Mapping.num_groups
        info.Mapping.used_block_size info.Mapping.num_rounds)
    compiled.Mapping.infos
