(* Porting a tuned code across multicores (the Figure 2 story).

   A multi-threaded code specialized for one machine's cache topology
   loses performance when moved to a machine with a different
   hierarchy; the best results always come from re-mapping for the
   machine at hand.

   Run with:  dune exec examples/stencil_port.exe *)

open Ctam_core
open Ctam_cachesim
open Ctam_arch

let () =
  let program = Ctam_workloads.Kernel.program Ctam_workloads.Suite.galgel in
  let scale = 16 in
  let machines = Machines.commercial ~scale () in

  (* Specialize galgel for each machine's topology. *)
  let versions =
    List.map
      (fun m ->
        Fmt.pr "building the %s version...@." m.Topology.name;
        (m, Mapping.compile Mapping.Combined ~machine:m program))
      machines
  in

  (* Execute every version on every machine, like the paper's
     Figure 2: the code tuned for the machine it runs on wins. *)
  Fmt.pr "@.%-14s" "run on \\ built";
  List.iter (fun m -> Fmt.pr " %16s" m.Topology.name) machines;
  Fmt.pr "@.";
  List.iter
    (fun target ->
      Fmt.pr "%-14s" target.Topology.name;
      let results =
        List.map
          (fun (src, compiled) ->
            let c =
              if src.Topology.name = target.Topology.name then compiled
              else Mapping.port compiled ~machine:target
            in
            float_of_int (Mapping.simulate c).Stats.cycles)
          versions
      in
      let best = List.fold_left min infinity results in
      List.iter (fun r -> Fmt.pr " %16.2f" (r /. best)) results;
      Fmt.pr "@.")
    machines;
  Fmt.pr
    "@.Rows are normalized to the best version for that machine: the\n\
     diagonal (native mapping) should dominate, as in the paper's Figure 2.@."
