(* Mapping a loop WITH loop-carried dependences (paper §3.5.2).

   The paper's Figure 5 loop (B[j] = B[j] + B[j+2k] + B[j-2k]) carries
   dependences at stride 2k.  The pipeline:
     - tags iterations and forms the 8 iteration groups of Figure 10(a),
     - builds the group dependence graph and merges any cycles,
     - distributes groups across the topology (Figure 6),
     - schedules them in barrier-separated rounds that respect every
       dependence (Figure 7).

   Run with:  dune exec examples/pipeline_deps.exe *)

open Ctam_ir
open Ctam_arch
open Ctam_blocks
open Ctam_deps
open Ctam_core
open Ctam_cachesim

let k = 2048

let source =
  Printf.sprintf
    {|
program fig5;
double B[%d];
double W[%d];

parallel for (j = %d; j <= %d; j++)
  B[j] = B[j] + B[j + %d] + B[j - %d] + W[j];
|}
    (12 * k) (12 * k) (2 * k)
    ((12 * k) - (2 * k) - 1)
    (2 * k) (2 * k)

let () =
  let program = Ctam_frontend.Lower.compile source in
  let machine = Machines.dunnington ~scale:16 () in
  let nest = List.hd (Program.parallel_nests program) in

  (* Dependence analysis. *)
  Fmt.pr "conservative test says the loop may carry dependences: %b@."
    (Dep_test.nest_may_carry_deps nest);

  (* Tags and groups: the example of the paper's Figure 10(a). *)
  let bm, _layout =
    Block_map.for_program ~block_size:(k * 8) ~line:64 program
  in
  let grouping = Tags.group nest bm in
  Fmt.pr "@.%d data blocks, %d iteration groups:@."
    (Block_map.num_blocks bm)
    (Array.length grouping.Tags.groups);
  Array.iter
    (fun g ->
      Fmt.pr "  group %d: tag %s (%d iterations)@." g.Iter_group.id
        (Bitset.to_string g.Iter_group.tag)
        (Iter_group.size g))
    grouping.Tags.groups;

  (* Group dependence graph + cycle merging. *)
  let dg = Group_deps.compute grouping in
  let groups, dag = Group_deps.merge_cycles grouping dg in
  Fmt.pr "@.dependence graph: %d edges over %d groups@."
    (Dep_graph.num_edges dag) (Array.length groups);
  List.iter
    (fun (a, b) -> Fmt.pr "  group %d -> group %d@." a b)
    (Dep_graph.edges dag);

  (* Distribute + schedule. *)
  let assignment = Distribute.run machine groups in
  let sched = Schedule.run machine assignment dag in
  Fmt.pr "@.schedule: %d rounds (barriers enforce the dependences)@."
    (Schedule.num_rounds sched);
  Fmt.pr "schedule respects every dependence: %b@."
    (Schedule.respects_deps sched dag);

  (* And the payoff, end to end. *)
  let base = Mapping.run Mapping.Base ~machine program in
  let topo = Mapping.run Mapping.Topology_aware ~machine program in
  Fmt.pr "@.synchronized Base: %d cycles@." base.Stats.cycles;
  Fmt.pr "topology-aware:    %d cycles (%.1f%% faster)@." topo.Stats.cycles
    (100.
    *. (float_of_int (base.Stats.cycles - topo.Stats.cycles)
       /. float_of_int base.Stats.cycles))
