(* ctamap: the cache-topology-aware computation mapper, as a CLI.

   Compiles loop-nest programs written in the paper's C-like DSL (or a
   built-in workload), maps them onto a cache topology with any of the
   paper's schemes, emits per-core loop code, and simulates execution
   on the machine's cache hierarchy. *)

open Cmdliner
open Ctam_ir
open Ctam_arch
open Ctam_cachesim
open Ctam_blocks
open Ctam_core
open Ctam_workloads

(* --- shared helpers -------------------------------------------------- *)

let load_program source =
  (* [source] is a DSL file path or the name of a built-in workload. *)
  if Sys.file_exists source then begin
    let ic = open_in_bin source in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    try Ok (Ctam_frontend.Lower.compile text)
    with Ctam_frontend.Parse_error.Error (pos, msg) ->
      Error (Ctam_frontend.Parse_error.render ~source:text pos msg)
  end
  else
    match Suite.by_name source with
    | k -> Ok (Kernel.program k)
    | exception Not_found ->
        Error
          (Printf.sprintf
             "'%s' is neither a file nor a built-in workload (workloads: %s)"
             source
             (String.concat ", " (List.map (fun k -> k.Kernel.name) Suite.all)))

(* Like [load_program], but times the parse and lower phases
   separately (for the run report); built-in workloads report zeros. *)
let load_program_timed source =
  if Sys.file_exists source then begin
    let ic = open_in_bin source in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    try
      let t0 = Unix.gettimeofday () in
      let ast = Ctam_frontend.Parser.parse text in
      let t1 = Unix.gettimeofday () in
      let prog = Ctam_frontend.Lower.lower_program ast in
      let t2 = Unix.gettimeofday () in
      Ok (prog, [ ("parse", t1 -. t0); ("lower", t2 -. t1) ])
    with Ctam_frontend.Parse_error.Error (pos, msg) ->
      Error (Ctam_frontend.Parse_error.render ~source:text pos msg)
  end
  else
    match load_program source with
    | Ok prog -> Ok (prog, [ ("parse", 0.); ("lower", 0.) ])
    | Error e -> Error e

let scheme_of_string = function
  | "base" -> Ok Mapping.Base
  | "base+" | "baseplus" -> Ok Mapping.Base_plus
  | "local" -> Ok Mapping.Local
  | "topology" | "topology-aware" | "ta" -> Ok Mapping.Topology_aware
  | "combined" -> Ok Mapping.Combined
  | s -> Error (Printf.sprintf "unknown scheme '%s'" s)

let read_text path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

(* A tuned-params file: the JSON [ctamap tune --save-params] writes
   (schema {!Ctam_tune.Space.of_json}). *)
let load_point path =
  match try Ok (read_text path) with Sys_error m -> Error m with
  | Error m -> Error m
  | Ok text -> (
      match Ctam_util.Json.parse text with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok j -> (
          match Ctam_tune.Space.of_json j with
          | Ok p -> Ok p
          | Error e -> Error (Printf.sprintf "%s: %s" path e)))

(* Fold the tuning inputs into [params]: the --params file first, then
   any explicit --alpha/--beta/--balance override.  Also returns the
   file's scheme so [run] can adopt it when -s is not given. *)
let apply_tuning params ~params_file ~alpha ~beta ~balance =
  let ( let* ) = Result.bind in
  let* point =
    match params_file with
    | None -> Ok None
    | Some path -> Result.map Option.some (load_point path)
  in
  let params =
    match point with
    | Some p -> Ctam_tune.Space.params_of ~base:params p
    | None -> params
  in
  let params =
    {
      params with
      Mapping.alpha = Option.value alpha ~default:params.Mapping.alpha;
      beta = Option.value beta ~default:params.Mapping.beta;
      balance_threshold =
        Option.value balance ~default:params.Mapping.balance_threshold;
    }
  in
  let* () = Mapping.validate_params params in
  Ok (params, Option.map (fun p -> p.Ctam_tune.Space.scheme) point)

let machine_arg =
  let doc =
    "Target machine: harpertown, nehalem, dunnington, arch-i, arch-ii — or \
     a topology description file (see Topo_parse)."
  in
  Arg.(value & opt string "dunnington" & info [ "m"; "machine" ] ~doc)

let scale_arg =
  let doc = "Cache-capacity scale divisor (1 = the paper's Table 1 sizes)." in
  Arg.(value & opt int 16 & info [ "scale" ] ~doc)

let scheme_arg =
  let doc = "Mapping scheme: base, base+, local, topology-aware, combined." in
  Arg.(value & opt string "combined" & info [ "s"; "scheme" ] ~doc)

let stream_arg =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Compile generator-backed access streams instead of materialised \
           arrays.  The simulated event order is bit-identical; only the \
           peak memory of large runs changes.")

let sample_sets_arg =
  Arg.(
    value & opt int 1
    & info [ "sample-sets" ] ~docv:"N"
        ~doc:
          "Simulate only one in $(docv) cache sets and extrapolate the \
           aggregate statistics (a power of two dividing every cache's set \
           count; 1 = exact).  Approximate but deterministic.")

let memo_arg =
  Arg.(
    value & flag
    & info [ "memo" ]
        ~doc:
          "Memoize per-phase simulation: phases re-entered with the same \
           access stream, cache state and hierarchy replay cached stat \
           deltas.  Exact — results are byte-identical, only faster.")

let validate_sample_sets n =
  if n >= 1 && n land (n - 1) = 0 then Ok ()
  else Error "--sample-sets must be a positive power of two"

let block_arg =
  let doc = "Data block size in bytes (the paper's default is 2048)." in
  Arg.(value & opt int 2048 & info [ "b"; "block" ] ~doc)

let alpha_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "alpha" ] ~docv:"A"
        ~doc:
          "Horizontal-reuse weight α of the scheduling cost function \
           (non-negative; default from the mapper or the --params file).")

let beta_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "beta" ] ~docv:"B"
        ~doc:
          "Vertical-reuse weight β of the scheduling cost function \
           (non-negative; default from the mapper or the --params file).")

let balance_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "balance" ] ~docv:"T"
        ~doc:
          "Distribution balance threshold (positive; default from the \
           mapper or the --params file).")

let params_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "params" ] ~docv:"FILE"
        ~doc:
          "Load mapping parameters (scheme, α, β, balance threshold, tile \
           edge) from a tuned-params JSON file, as written by $(b,tune \
           --save-params).  Explicit flags override the file.")

let source_arg =
  let doc = "DSL source file, or the name of a built-in workload." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Verbosity of ctamap's own structured logger: error, warn, info, \
           debug, or off (default: \\$CTAM_LOG or warn).  Set \
           \\$CTAM_LOG_FORMAT=json for JSON-lines output on stderr.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a self-telemetry snapshot to $(docv) after the command \
           finishes: every registry metric (phase timings, engine \
           aggregates, parallel-pool utilization, tune-cache traffic) plus \
           process GC totals.  JSON by default; a $(b,.prom) suffix selects \
           the Prometheus text exposition format instead.")

let log_format_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-format" ] ~docv:"FMT"
        ~doc:
          "Rendering of ctamap's own structured logger: $(b,human) or \
           $(b,json) (JSON lines on stderr; default: \\$CTAM_LOG_FORMAT or \
           human).")

let set_log_level = function
  | None -> Ok ()
  | Some s -> Ctam_telemetry.Log.set_level_of_string s

let set_log_format = function
  | None -> Ok ()
  | Some s -> Ctam_telemetry.Log.set_format_of_string s

let write_metrics = function
  | None -> Ok ()
  | Some path -> (
      try
        if Filename.check_suffix path ".prom" then
          Ctam_telemetry.Prometheus.write path
        else
          Ctam_telemetry.Profile.write_snapshot
            ~version:Ctam_exp.Build_info.version
            ~telemetry_version:Ctam_exp.Build_info.telemetry_version path;
        Ok ()
      with Sys_error msg -> Error ("cannot write metrics: " ^ msg))

let get_machine name scale =
  if Sys.file_exists name then begin
    let ic = open_in_bin name in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Topo_parse.parse text with
    | t ->
        (* Scale file-described machines the same way as presets. *)
        Ok
          (Topology.map_caches
             (fun p ->
               let set = p.Topology.assoc * p.Topology.line in
               {
                 p with
                 Topology.size_bytes =
                   max set (p.Topology.size_bytes / scale / set * set);
               })
             t)
    | exception Topo_parse.Error msg ->
        Error (Printf.sprintf "%s: %s" name msg)
  end
  else
    match Machines.by_name ~scale name with
    | m -> Ok m
    | exception Not_found -> Error (Printf.sprintf "unknown machine '%s'" name)

let policy_arg =
  let doc =
    Printf.sprintf
      "Replacement-policy override: one policy name for every cache level, \
       or per-level bindings like $(b,L1=plru,L2=qlru) (later bindings \
       win).  Policies: %s."
      (String.concat "; "
         (List.map
            (fun (n, d) -> Printf.sprintf "$(b,%s) — %s" n d)
            Policy.all))
  in
  Arg.(value & opt (some string) None & info [ "policy" ] ~docv:"SPEC" ~doc)

let apply_policy spec machine =
  match spec with
  | None -> Ok machine
  | Some s -> (
      match Policy.parse_spec s with
      | Error e -> Error e
      | Ok bindings -> (
          let known =
            List.map
              (fun c -> c.Topology.level)
              (Topology.caches machine)
          in
          match
            List.find_opt
              (fun (lvl, _) ->
                match lvl with
                | Some l -> not (List.mem l known)
                | None -> false)
              bindings
          with
          | Some (Some l, _) ->
              Error
                (Printf.sprintf "--policy: machine %s has no L%d cache"
                   machine.Topology.name l)
          | _ -> Ok (Topology.with_policy_spec bindings machine)))

let ( let* ) r f = match r with Ok v -> f v | Error e -> `Error (false, e)

(* --- commands --------------------------------------------------------- *)

let machines_cmd =
  let run scale =
    List.iter
      (fun m -> Fmt.pr "%a@.@." Topology.pp m)
      (Machines.commercial ~scale ()
      @ [ Machines.arch_i ~scale (); Machines.arch_ii ~scale () ]);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "machines" ~doc:"List the built-in cache topologies.")
    Term.(ret (const run $ scale_arg))

let groups_cmd =
  let run source machine scale block limit =
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let params = { Mapping.default_params with block_size = block } in
    match Program.parallel_nests prog with
    | [] -> `Error (false, "program has no parallel nest")
    | nest :: _ ->
        let _grouping, groups, dag =
          Mapping.grouping_for ~params ~machine prog nest
        in
        Fmt.pr "nest %s: %d iteration groups, %d dependence edges@."
          nest.Nest.name (Array.length groups)
          (Ctam_deps.Dep_graph.num_edges dag);
        Array.iteri
          (fun i g -> if i < limit then Fmt.pr "  %a@." Iter_group.pp g)
          groups;
        if Array.length groups > limit then
          Fmt.pr "  ... (%d more)@." (Array.length groups - limit);
        `Ok ()
  in
  let limit =
    Arg.(value & opt int 16 & info [ "n"; "limit" ] ~doc:"Groups to print.")
  in
  Cmd.v
    (Cmd.info "groups"
       ~doc:"Show the iteration groups (tags) of a program's parallel nest.")
    Term.(
      ret (const run $ source_arg $ machine_arg $ scale_arg $ block_arg $ limit))

let map_cmd =
  let run source machine scale scheme block =
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let* scheme = scheme_of_string scheme in
    let params = { Mapping.default_params with block_size = block } in
    let compiled = Mapping.compile ~params scheme ~machine prog in
    Fmt.pr "program %s mapped with %s for %s@." prog.Program.name
      (Mapping.scheme_name scheme) machine.Topology.name;
    List.iter
      (fun info ->
        Fmt.pr "  nest %-12s groups=%-5d rounds=%-4d dep-edges=%-5d block=%dB@."
          info.Mapping.nest_name info.Mapping.num_groups info.Mapping.num_rounds
          info.Mapping.dep_edges info.Mapping.used_block_size)
      compiled.Mapping.infos;
    (* Per-core access counts of the first phase. *)
    (match compiled.Mapping.phases with
    | phase :: _ ->
        Fmt.pr "first phase accesses per core:@.";
        Array.iteri
          (fun c s -> Fmt.pr "  core %2d: %d@." c (Engine.stream_length s))
          phase
    | [] -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "map"
       ~doc:"Compile a program and print the mapping summary.")
    Term.(
      ret (const run $ source_arg $ machine_arg $ scale_arg $ scheme_arg
           $ block_arg))

let simulate_cmd =
  let run source machine scale scheme block policy =
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let* machine = apply_policy policy machine in
    let* scheme = scheme_of_string scheme in
    let params = { Mapping.default_params with block_size = block } in
    let stats = Mapping.run ~params scheme ~machine prog in
    Fmt.pr "%s on %s (%s):@.%a@."
      prog.Program.name machine.Topology.name (Mapping.scheme_name scheme)
      Stats.pp stats;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Compile and execute a program on the simulated hierarchy.")
    Term.(
      ret (const run $ source_arg $ machine_arg $ scale_arg $ scheme_arg
           $ block_arg $ policy_arg))

let run_cmd =
  let run source machine scale scheme block json profile check window alpha
      beta balance params_file stream sample_sets memo log_level metrics_out
      policy =
    let* () = set_log_level log_level in
    let* prog, frontend_timings = load_program_timed source in
    let* machine = get_machine machine scale in
    let* machine = apply_policy policy machine in
    let* () =
      match window with
      | Some w when w <= 0 -> Error "--window must be positive"
      | _ -> Ok ()
    in
    let* () = validate_sample_sets sample_sets in
    let* params, file_scheme =
      apply_tuning
        { Mapping.default_params with block_size = block }
        ~params_file ~alpha ~beta ~balance
    in
    let* scheme =
      match scheme with
      | Some s -> scheme_of_string s
      | None -> Ok (Option.value file_scheme ~default:Mapping.Combined)
    in
    let* p =
      (* Hierarchy.create rejects a sampling factor that does not
         divide some cache's set count; surface that as a CLI error. *)
      match
        Ctam_exp.Run_report.profile ~params ?timeline_window:window
          ~frontend_timings ~check ~stream ~sample_sets ~memo scheme ~machine
          prog
      with
      | p -> Ok p
      | exception Invalid_argument msg -> Error msg
    in
    let* () =
      match p.Ctam_exp.Run_report.verify with
      | None -> Ok ()
      | Some r ->
          Fmt.pr "%a@." Ctam_verify.Verify.pp_report r;
          if Ctam_verify.Verify.ok r then Ok ()
          else Error "mapping verification failed"
    in
    Fmt.pr "%s on %s (%s):@.%a@." prog.Program.name machine.Topology.name
      (Mapping.scheme_name scheme)
      Stats.pp p.Ctam_exp.Run_report.stats;
    let counters = p.Ctam_exp.Run_report.counters in
    let reuse = p.Ctam_exp.Run_report.reuse in
    if profile then begin
      let timings =
        frontend_timings
        @ p.Ctam_exp.Run_report.compiled.Mapping.timings
        @ [ ("simulate", p.Ctam_exp.Run_report.sim_seconds) ]
      in
      Fmt.pr "@.compile/simulate phases:@.%s"
        (Ctam_exp.Report.table
           ~header:[ "phase"; "seconds" ]
           (List.map
              (fun (k, v) -> [ k; Printf.sprintf "%.6f" v ])
              timings));
      let levels = Probe_sinks.Counters.levels counters in
      let header =
        [ "core"; "accesses"; "mem" ]
        @ List.concat_map
            (fun l ->
              [ Printf.sprintf "L%d-miss" l; Printf.sprintf "L%d-rate" l ])
            levels
      in
      let rows =
        List.init machine.Topology.num_cores (fun core ->
            string_of_int core
            :: string_of_int (Probe_sinks.Counters.accesses counters ~core)
            :: string_of_int (Probe_sinks.Counters.mem counters ~core)
            :: List.concat_map
                 (fun level ->
                   let h = Probe_sinks.Counters.hits counters ~core ~level in
                   let m = Probe_sinks.Counters.misses counters ~core ~level in
                   [
                     string_of_int m;
                     (if h + m = 0 then "-"
                      else
                        Printf.sprintf "%.3f"
                          (float_of_int m /. float_of_int (h + m)));
                   ])
                 levels)
      in
      Fmt.pr "@.per-core counters:@.%s"
        (Ctam_exp.Report.table ~geomean:"geomean" ~header rows);
      let top_groups =
        Probe_sinks.Counters.group_stats counters
        |> List.sort
             (fun (_, a) (_, b) ->
               compare
                 b.Probe_sinks.Counters.g_mem
                 a.Probe_sinks.Counters.g_mem)
        |> fun l -> List.filteri (fun i _ -> i < 10) l
      in
      if top_groups <> [] then
        Fmt.pr "@.hottest groups (by memory accesses):@.%s"
          (Ctam_exp.Report.table
             ~header:[ "nest:group"; "accesses"; "mem" ]
             (List.map
                (fun (seg, g) ->
                  let nest, group =
                    match List.assoc_opt seg p.Ctam_exp.Run_report.legend with
                    | Some ng -> ng
                    | None -> ("?", seg)
                  in
                  [
                    Printf.sprintf "%s:%d" nest group;
                    string_of_int g.Probe_sinks.Counters.g_accesses;
                    string_of_int g.Probe_sinks.Counters.g_mem;
                  ])
                top_groups));
      let v = Probe_sinks.Reuse_split.vertical reuse in
      let hz = Probe_sinks.Reuse_split.horizontal reuse in
      let x = Probe_sinks.Reuse_split.cross reuse in
      Fmt.pr
        "@.reuse: %d accesses, %d cold; vertical %d (mean dist %.1f), \
         horizontal %d (mean dist %.1f), cross-socket %d@."
        (Probe_sinks.Reuse_split.total reuse)
        (Probe_sinks.Reuse_split.cold reuse)
        v.Reuse.total (Reuse.mean_distance v) hz.Reuse.total
        (Reuse.mean_distance hz) x.Reuse.total
    end;
    (match p.Ctam_exp.Run_report.timeline with
    | Some tl when profile ->
        Fmt.pr "@.timeline: %d windows of %d cycles, %d spans@."
          (Timeline.num_windows tl) (Timeline.window tl)
          (List.length (Timeline.spans tl))
    | _ -> ());
    let* () = write_metrics metrics_out in
    match json with
    | Some path -> (
        try
          Ctam_exp.Run_report.write_file path p.Ctam_exp.Run_report.report;
          Fmt.pr "wrote %s@." path;
          `Ok ()
        with Sys_error msg -> `Error (false, "cannot write report: " ^ msg))
    | None -> `Ok ()
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the structured JSON run report to $(docv).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print compile-phase timings, per-core/per-level counters, \
             per-group miss attribution and the reuse split.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run the mapping legality checker before simulating; the \
             verdict is printed, added to the JSON report, and a violation \
             exits non-zero (see the $(b,check) command).")
  in
  let window =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Attach the timeline sink with $(docv)-cycle windows and embed \
             the windowed time-series metrics (per-core occupancy and \
             per-level hit/miss series, reuse split) in the JSON report.")
  in
  let scheme =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "scheme" ]
          ~doc:
            "Mapping scheme: base, base+, local, topology-aware, combined \
             (default: the --params file's scheme, else combined).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Compile and execute a program with the observability probes \
          attached (counters, per-group attribution, reuse split); \
          optionally emit a JSON run report.")
    Term.(
      ret
        (const run $ source_arg $ machine_arg $ scale_arg $ scheme
       $ block_arg $ json $ profile $ check $ window $ alpha_arg $ beta_arg
       $ balance_arg $ params_file_arg $ stream_arg $ sample_sets_arg
       $ memo_arg $ log_level_arg $ metrics_out_arg $ policy_arg))

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run the per-scheme simulations across $(docv) domains (default: \
           \\$CTAM_JOBS or the machine's core count).  The output is \
           byte-identical to a serial run.")

let compare_cmd =
  let run source machine scale block jobs alpha beta balance params_file
      stream sample_sets memo log_level metrics_out policy =
    let* () = set_log_level log_level in
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let* machine = apply_policy policy machine in
    let* () = validate_sample_sets sample_sets in
    (* The tuned point's parameters apply to every scheme in the table
       (its scheme coordinate is ignored; each scheme reads the knobs
       it uses). *)
    let* params, _ =
      apply_tuning
        { Mapping.default_params with block_size = block }
        ~params_file ~alpha ~beta ~balance
    in
    (* One memo table shared by all schemes: phases that coincide
       across schemes (e.g. identical Base chunks) replay.  The table
       is mutex-protected, so the parallel map below can share it. *)
    let sim_memo = if memo then Some (Memo.create ()) else None in
    (* Simulate every scheme in parallel, then assemble the table
       serially so the Base-normalization and row order match the old
       one-scheme-at-a-time loop exactly. *)
    let* results =
      match
        Ctam_util.Parallel.map ?domains:jobs
          (fun scheme ->
            ( scheme,
              Mapping.run ~params ~stream
                ?sample_sets:(if sample_sets > 1 then Some sample_sets else None)
                ?memo:sim_memo scheme ~machine prog ))
          Mapping.all_schemes
      with
      | r -> Ok r
      | exception Invalid_argument msg -> Error msg
    in
    let base = ref 1 in
    let rows =
      List.map
        (fun (scheme, (stats : Stats.t)) ->
          if scheme = Mapping.Base then base := stats.Stats.cycles;
          [
            Mapping.scheme_name scheme;
            string_of_int stats.Stats.cycles;
            string_of_int stats.Stats.mem_accesses;
            Printf.sprintf "%.3f"
              (float_of_int stats.Stats.cycles /. float_of_int !base);
          ])
        results
    in
    print_string
      (Ctam_exp.Report.table ~geomean:"geomean"
         ~header:[ "scheme"; "cycles"; "mem"; "vs Base" ]
         rows);
    let* () = write_metrics metrics_out in
    `Ok ()
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare all mapping schemes on one program.")
    Term.(
      ret
        (const run $ source_arg $ machine_arg $ scale_arg $ block_arg
       $ jobs_arg $ alpha_arg $ beta_arg $ balance_arg $ params_file_arg
       $ stream_arg $ sample_sets_arg $ memo_arg $ log_level_arg
       $ metrics_out_arg $ policy_arg))

let tune_cmd =
  let run source machine scale block strategy budget cache_dir json
      save_params verify jobs stream sample_sets memo log_level metrics_out
      policy =
    let* () = set_log_level log_level in
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let* machine = apply_policy policy machine in
    let* strategy = Ctam_tune.Search.strategy_of_id strategy in
    let* () =
      match budget with
      | Some b when b < 0 -> Error "--budget must be non-negative"
      | _ -> Ok ()
    in
    let* () = validate_sample_sets sample_sets in
    let base_params = { Mapping.default_params with block_size = block } in
    let* () = Mapping.validate_params base_params in
    let settings =
      {
        Ctam_tune.Search.default_settings with
        strategy;
        budget;
        cache_dir;
        jobs;
        base_params;
        verify;
        stream;
        sample_sets;
        memo;
      }
    in
    let* result =
      match
        Ctam_tune.Search.run settings ~machine
          ~program_name:prog.Program.name prog
      with
      | r -> Ok r
      | exception Invalid_argument msg -> Error msg
    in
    print_string (Ctam_tune.Search.render result);
    let write path j =
      try
        Ctam_exp.Run_report.write_file path j;
        Fmt.pr "wrote %s@." path;
        Ok ()
      with Sys_error msg -> Error ("cannot write: " ^ msg)
    in
    let* () =
      match save_params with
      | Some path -> write path (Ctam_tune.Search.best_params_json result)
      | None -> Ok ()
    in
    let* () =
      match json with
      | Some path -> write path (Ctam_tune.Search.to_json result)
      | None -> Ok ()
    in
    let* () = write_metrics metrics_out in
    match result.Ctam_tune.Search.verify_ok with
    | Some false -> `Error (false, "winning mapping failed verification")
    | _ -> `Ok ()
  in
  let strategy =
    Arg.(
      value & opt string "grid"
      & info [ "strategy" ] ~docv:"S"
          ~doc:
            "Search strategy: $(b,grid) (exhaustive), $(b,descent) \
             (coordinate descent from the default), or $(b,halving) \
             (successive halving under growing cycle caps).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Evaluate at most $(docv) configurations beyond the default \
             (which is always evaluated).  A persistent-cache hit costs no \
             simulation but still counts, so the searched set and the \
             winner do not depend on the cache's temperature.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Persistent result-cache directory.  Keys cover the program \
             source, the topology, the parameters and the tool version, so \
             re-tuning after unrelated edits is pure cache hits and never \
             changes the result.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the tune report to $(docv).  The report is \
             deterministic (no timestamps): identical runs produce \
             byte-identical files at any -j, and $(b,report diff) can \
             compare them across commits.")
  in
  let save_params =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-params" ] ~docv:"FILE"
          ~doc:
            "Write the winning parameters to $(docv), in the format \
             $(b,run --params) and $(b,compare --params) accept.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Run the mapping legality checker on the winning \
             configuration; a violation exits non-zero.")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search the mapping-parameter space (scheme, α, β, balance \
          threshold, tile edge) for the lowest-cycle configuration of a \
          program on a machine, using the cache simulator as the cost \
          oracle.")
    Term.(
      ret
        (const run $ source_arg $ machine_arg $ scale_arg $ block_arg
       $ strategy $ budget $ cache_dir $ json $ save_params $ verify
       $ jobs_arg $ stream_arg $ sample_sets_arg $ memo_arg $ log_level_arg
       $ metrics_out_arg $ policy_arg))

let codegen_cmd =
  let run source machine scale core block =
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let params = { Mapping.default_params with block_size = block } in
    match Program.parallel_nests prog with
    | [] -> `Error (false, "program has no parallel nest")
    | nest :: _ ->
        if core < 0 || core >= machine.Topology.num_cores then
          `Error (false, "core out of range")
        else begin
          let _grouping, groups, dag =
            Mapping.grouping_for ~params ~machine prog nest
          in
          let assignment = Distribute.run machine groups in
          let sched = Schedule.run machine assignment dag in
          let per_core = Schedule.per_core sched in
          Fmt.pr "// code for core %d of %s (%d groups)@." core
            machine.Topology.name
            (List.length per_core.(core));
          let body =
            Fmt.str "%a"
              (Fmt.list ~sep:(Fmt.any " ")
                 (Ctam_ir.Stmt.pp ~names:nest.Nest.index_names))
              nest.Nest.body
          in
          List.iter
            (fun g ->
              let cg = Ctam_poly.Codegen.decompose g.Iter_group.iters in
              Fmt.pr "// group %d, tag weight %d@.%s" g.Iter_group.id
                (Bitset.count g.Iter_group.tag)
                (Ctam_poly.Codegen.emit ~names:nest.Nest.index_names ~body cg))
            per_core.(core);
          `Ok ()
        end
  in
  let core =
    Arg.(value & opt int 0 & info [ "c"; "core" ] ~doc:"Core to emit code for.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:
         "Emit the C-like loop nests that enumerate one core's iteration \
          groups (the Omega-style codegen step).")
    Term.(
      ret (const run $ source_arg $ machine_arg $ scale_arg $ core $ block_arg))

let dump_cmd =
  let run source output =
    let* prog = load_program source in
    let text = Ctam_frontend.Unparse.program prog in
    (match output with
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Fmt.pr "wrote %s@." path
    | None -> print_string text);
    `Ok ()
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the DSL text to this file.")
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Render a program (e.g. a built-in workload) as DSL source.")
    Term.(ret (const run $ source_arg $ output))

let reuse_cmd =
  let run source machine scale scheme block =
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let* scheme = scheme_of_string scheme in
    let params = { Mapping.default_params with block_size = block } in
    let compiled = Mapping.compile ~params scheme ~machine prog in
    let line =
      match Topology.caches machine with p :: _ -> p.Topology.line | [] -> 64
    in
    let l1_lines = Mapping.l1_capacity machine / line in
    (* Per-core reuse profile of the first phase. *)
    (match compiled.Mapping.phases with
    | [] -> ()
    | phase :: _ ->
        let phase = Array.map Engine.force_stream phase in
        let hists =
          Array.to_list (Array.map (fun s -> Reuse.of_stream s ~line) phase)
        in
        Array.iteri
          (fun c s ->
            if Array.length s > 0 then begin
              let h = Reuse.of_stream s ~line in
              Fmt.pr
                "core %2d: %7d accesses, %6d cold, mean distance %8.1f, \
                 L1-size hit ratio %.2f@."
                c (Array.length s) h.Reuse.cold (Reuse.mean_distance h)
                (Reuse.hit_ratio_at h ~lines:l1_lines)
            end)
          phase;
        let m = Reuse.merge hists in
        Fmt.pr "machine:  %7d accesses, %6d cold, mean distance %8.1f@."
          m.Reuse.total m.Reuse.cold (Reuse.mean_distance m));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "reuse"
       ~doc:
         "Reuse-distance (LRU stack distance) profile of a mapping's \
          per-core access streams.")
    Term.(
      ret (const run $ source_arg $ machine_arg $ scale_arg $ scheme_arg
           $ block_arg))

let emit_c_cmd =
  let run source machine scale scheme block output =
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let* scheme = scheme_of_string scheme in
    let params = { Mapping.default_params with block_size = block } in
    let compiled = Mapping.compile ~params scheme ~machine prog in
    let code = Emit_c.program compiled in
    (match output with
    | Some path ->
        let oc = open_out path in
        output_string oc code;
        close_out oc;
        Fmt.pr "wrote %s (%d bytes); compile with: gcc -fopenmp -O2 %s@." path
          (String.length code) path
    | None -> print_string code);
    `Ok ()
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the C program to this file.")
  in
  Cmd.v
    (Cmd.info "emit-c"
       ~doc:
         "Emit the mapped program as a complete OpenMP C file (per-core           loop nests, barriers between scheduling rounds).")
    Term.(
      ret (const run $ source_arg $ machine_arg $ scale_arg $ scheme_arg
           $ block_arg $ output))

let check_cmd =
  let run source machine scale scheme block all_schemes inject json log_level
      metrics_out =
    let* () = set_log_level log_level in
    let* prog = load_program source in
    let* machine = get_machine machine scale in
    let* schemes =
      if all_schemes then Ok Mapping.all_schemes
      else
        match scheme_of_string scheme with
        | Ok s -> Ok [ s ]
        | Error e -> Error e
    in
    let* inject =
      match inject with
      | None -> Ok None
      | Some s -> (
          match Ctam_verify.Inject.of_string s with
          | Ok c -> Ok (Some c)
          | Error e -> Error e)
    in
    let params = { Mapping.default_params with block_size = block } in
    let reports =
      List.map
        (fun scheme ->
          let compiled = Mapping.compile ~params scheme ~machine prog in
          let compiled =
            match inject with
            | None -> compiled
            | Some corruption ->
                let compiled, what =
                  Ctam_verify.Inject.apply corruption compiled
                in
                Fmt.pr "injected (%s): %s@."
                  (Ctam_verify.Inject.to_string corruption)
                  what;
                compiled
          in
          let r = Ctam_verify.Verify.check compiled in
          Fmt.pr "%s / %s / %s:@.%a@." prog.Program.name machine.Topology.name
            (Mapping.scheme_name scheme) Ctam_verify.Verify.pp_report r;
          (scheme, r))
        schemes
    in
    let* () =
      match json with
      | None -> Ok ()
      | Some path -> (
          let j =
            Ctam_util.Json.Obj
              [
                ( "version",
                  Ctam_util.Json.String Ctam_exp.Build_info.version );
                ("program", Ctam_util.Json.String prog.Program.name);
                ("machine", Ctam_util.Json.String machine.Topology.name);
                ( "inject",
                  match inject with
                  | None -> Ctam_util.Json.Null
                  | Some c ->
                      Ctam_util.Json.String (Ctam_verify.Inject.to_string c) );
                ( "checks",
                  Ctam_util.Json.List
                    (List.map
                       (fun (scheme, r) ->
                         Ctam_util.Json.Obj
                           [
                             ( "scheme",
                               Ctam_util.Json.String (Mapping.scheme_name scheme)
                             );
                             ("report", Ctam_verify.Verify.to_json r);
                           ])
                       reports) );
              ]
          in
          try
            let oc = open_out path in
            output_string oc (Ctam_util.Json.to_string j);
            output_char oc '\n';
            close_out oc;
            Fmt.pr "wrote %s@." path;
            Ok ()
          with Sys_error msg -> Error ("cannot write report: " ^ msg))
    in
    let* () = write_metrics metrics_out in
    let bad =
      List.filter (fun (_, r) -> not (Ctam_verify.Verify.ok r)) reports
    in
    if bad = [] then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "mapping verification failed (%d scheme(s))"
            (List.length bad) )
  in
  let all_schemes =
    Arg.(
      value & flag
      & info [ "all-schemes" ] ~doc:"Check every mapping scheme in turn.")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"MODE"
          ~doc:
            "Deliberately corrupt the compiled mapping before checking \
             (bad-coverage or bad-order); the check must then fail, proving \
             the checker detects broken mappings.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the verification report as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify a compiled mapping end to end: iteration coverage and \
          disjointness against the nest domains, codegen faithfulness, \
          dependence legality across phases, trace-level race freedom, and \
          topology well-formedness.  Exits non-zero if any invariant is \
          violated.")
    Term.(
      ret
        (const run $ source_arg $ machine_arg $ scale_arg $ scheme_arg
       $ block_arg $ all_schemes $ inject $ json $ log_level_arg
       $ metrics_out_arg))

let trace_cmd =
  let run source machine scale scheme block output window heatmap =
    let* prog, frontend_timings = load_program_timed source in
    let* machine = get_machine machine scale in
    let* scheme = scheme_of_string scheme in
    let* () = if window <= 0 then Error "--window must be positive" else Ok () in
    let params = { Mapping.default_params with block_size = block } in
    let compiled =
      Mapping.compile ~params ~clock:Unix.gettimeofday scheme ~machine prog
    in
    let segments, legend = Mapping.segments compiled in
    let tl = Timeline.create ~window ~segments machine in
    let stats = Mapping.simulate ~probe:(Timeline.probe tl) compiled in
    let compile_timings = frontend_timings @ compiled.Mapping.timings in
    let j =
      Ctam_exp.Trace_export.trace_json ~compile_timings
        ~program:prog.Program.name ~machine:machine.Topology.name
        ~scheme:(Mapping.scheme_name scheme) ~legend tl
    in
    match
      try
        Ctam_exp.Run_report.write_file output j;
        Ok ()
      with Sys_error msg -> Error ("cannot write trace: " ^ msg)
    with
    | Error e -> `Error (false, e)
    | Ok () ->
        Fmt.pr
          "wrote %s: %d cycles in %d windows of %d, %d spans, %d barriers@."
          output stats.Stats.cycles (Timeline.num_windows tl)
          (Timeline.window tl)
          (List.length (Timeline.spans tl))
          (List.length (Timeline.barriers tl));
        if heatmap then
          List.iter
            (fun level ->
              match Timeline.render_heatmap tl ~level with
              | Some s -> Fmt.pr "@.%s" s
              | None -> ())
            (Timeline.levels tl);
        `Ok ()
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the Chrome trace-event JSON to $(docv).")
  in
  let window =
    Arg.(
      value
      & opt int Timeline.default_window
      & info [ "window" ] ~docv:"N"
          ~doc:"Time-series window width in simulated cycles.")
  in
  let heatmap =
    Arg.(
      value & flag
      & info [ "heatmap" ]
          ~doc:
            "Also print an ASCII set-index x window conflict-miss heatmap \
             per cache level.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Simulate a program with the timeline sink attached and export a \
          Chrome trace-event / Perfetto JSON file: per-core iteration-group \
          spans, barrier and invalidation instants, per-window counter \
          tracks, and the compile phases on their own track.  Load the \
          output in chrome://tracing or ui.perfetto.dev.")
    Term.(
      ret
        (const run $ source_arg $ machine_arg $ scale_arg $ scheme_arg
       $ block_arg $ output $ window $ heatmap))

let report_cmd =
  let diff_run a b threshold =
    match Ctam_exp.Report_diff.diff_files ~threshold a b with
    | Error e -> `Error (false, e)
    | Ok (text, regressions) ->
        print_string text;
        if regressions = 0 then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf "%d metric(s) regressed by more than %.1f%%"
                regressions threshold )
  in
  let a_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"A" ~doc:"Baseline report (JSON or JSONL).")
  in
  let b_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"B" ~doc:"New report to compare against $(i,A).")
  in
  let threshold =
    Arg.(
      value
      & opt float Ctam_exp.Report_diff.default_threshold
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Flag a metric as a regression when it grows by more than \
             $(docv) percent.")
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Align two run reports / bench sweeps by (workload, machine, \
            scheme) and print per-metric deltas; exits non-zero when any \
            higher-is-worse metric (cycles, memory accesses, miss rates, \
            vs-base ratios) regressed past the threshold.")
      Term.(ret (const diff_run $ a_arg $ b_arg $ threshold))
  in
  let default = Term.(ret (const (`Help (`Pager, Some "report")))) in
  Cmd.group ~default
    (Cmd.info "report" ~doc:"Operations on JSON run reports.")
    [ diff_cmd ]

let experiment_cmd =
  let run name quick =
    match Ctam_exp.Experiments.by_name name with
    | runner ->
        print_string (runner ~quick ());
        `Ok ()
    | exception Not_found ->
        `Error
          ( false,
            Printf.sprintf "unknown experiment '%s' (known: %s)" name
              (String.concat ", " Ctam_exp.Experiments.names) )
  in
  let exp_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment name, e.g. fig13.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Quarter-size workloads.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one of the paper's experiments.")
    Term.(ret (const run $ exp_name $ quick))

let serve_cmd =
  let run socket workers cache_dir cache_entries cache_mb max_frame_mb
      timeout_ms journal journal_max_mb slow_ms slowlog_entries log_level
      log_format metrics_out =
    (* The daemon defaults to info so its startup-config and lifecycle
       lines are visible; an explicit --log-level or $CTAM_LOG still
       wins. *)
    (if log_level = None && Sys.getenv_opt Ctam_telemetry.Log.env_var = None
     then Ctam_telemetry.Log.set_level (Some Ctam_telemetry.Log.Info));
    let* () = set_log_level log_level in
    let* () = set_log_format log_format in
    let* () =
      if workers < 1 then Error "--workers must be positive" else Ok ()
    in
    let* () =
      if cache_entries < 1 || cache_mb < 1 || max_frame_mb < 1 then
        Error "--cache-entries, --cache-mb and --max-frame-mb must be positive"
      else Ok ()
    in
    let* () =
      if journal_max_mb < 1 then Error "--journal-max-mb must be positive"
      else Ok ()
    in
    let* () =
      if slow_ms < 0. then Error "--slow-ms must be non-negative" else Ok ()
    in
    let* () =
      if slowlog_entries < 1 then Error "--slowlog-entries must be positive"
      else Ok ()
    in
    let config =
      {
        Ctam_serve.Server.socket;
        workers;
        max_frame = max_frame_mb * 1024 * 1024;
        default_timeout_ms = timeout_ms;
        cache_dir;
        cache_entries;
        cache_bytes = cache_mb * 1024 * 1024;
        journal_path = journal;
        journal_max_bytes = journal_max_mb * 1024 * 1024;
        slow_ms;
        slowlog_entries;
      }
    in
    match Ctam_serve.Server.create config with
    | exception Unix.Unix_error (err, _, _) ->
        `Error
          ( false,
            Printf.sprintf "cannot listen on %s: %s" socket
              (Unix.error_message err) )
    | exception Sys_error msg ->
        `Error (false, Printf.sprintf "cannot open journal: %s" msg)
    | t ->
        let stop _ = Ctam_serve.Server.stop t in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        (* Lifecycle lines come from the daemon's structured logger
           (Server.serve logs the effective config at info). *)
        Ctam_serve.Server.serve t;
        let* () = write_metrics metrics_out in
        `Ok ()
  in
  let socket =
    Arg.(
      value
      & opt string "ctamap.sock"
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path to listen on.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Concurrent request workers (one domain each).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the compiled-plan cache under $(docv) (shared with, but \
             distinct from, the tune evaluation cache).  Without it the \
             cache is in-memory only.")
  in
  let cache_entries =
    Arg.(
      value
      & opt int Ctam_serve.Plan_cache.default_max_entries
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"In-memory plan-cache entry bound.")
  in
  let cache_mb =
    Arg.(
      value
      & opt int (Ctam_serve.Plan_cache.default_max_bytes / (1024 * 1024))
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:"In-memory plan-cache byte bound, in MiB.")
  in
  let max_frame_mb =
    Arg.(
      value
      & opt int (Ctam_serve.Protocol.default_max_frame / (1024 * 1024))
      & info [ "max-frame-mb" ] ~docv:"MB"
          ~doc:
            "Refuse request frames larger than $(docv) MiB (answered with a \
             structured error, connection kept when possible).")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline; requests may override with their \
             own $(b,timeout_ms) member.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append an audit-journal record (JSON line: request id, op, \
             cache outcome, per-span timings, byte counts, status, plus the \
             request and response documents) to $(docv) for every request \
             served.  Size-rotated; replayable with \
             $(b,tools/journal_replay).")
  in
  let journal_max_mb =
    Arg.(
      value
      & opt int (Ctam_serve.Journal.default_max_bytes / (1024 * 1024))
      & info [ "journal-max-mb" ] ~docv:"MB"
          ~doc:
            "Rotate the journal (rename to $(i,FILE).1 and restart) when it \
             would exceed $(docv) MiB.")
  in
  let slow_ms =
    Arg.(
      value
      & opt float Ctam_serve.Slowlog.default_threshold_ms
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Record requests at least $(docv) ms in the in-memory slowlog \
             ring, queryable live with the $(b,slowlog) op.")
  in
  let slowlog_entries =
    Arg.(
      value
      & opt int Ctam_serve.Slowlog.default_capacity
      & info [ "slowlog-entries" ] ~docv:"N"
          ~doc:"Slowlog ring capacity (oldest entries overwritten).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the mapping daemon: a Unix-domain-socket server answering \
          map/run/tune/check requests (length-prefixed JSON frames) from a \
          worker pool, with an LRU compiled-plan cache in front of the \
          pipeline.  Malformed requests get structured error replies; only \
          a shutdown request or SIGINT/SIGTERM stops it.  Observability: \
          per-request ids on every reply and log line, an optional \
          append-only audit journal ($(b,--journal)), a slow-request ring \
          ($(b,--slow-ms)) and live $(b,metrics)/$(b,slowlog) wire ops.")
    Term.(
      ret
        (const run $ socket $ workers $ cache_dir $ cache_entries $ cache_mb
       $ max_frame_mb $ timeout_ms $ journal $ journal_max_mb $ slow_ms
       $ slowlog_entries $ log_level_arg $ log_format_arg $ metrics_out_arg))

let client_cmd =
  let module J = Ctam_util.Json in
  let build_request ~op ~source ~machine ~scale ~scheme ~block ~stream
      ~sample_sets ~check ~strategy ~budget ~nocache ~timeout_ms ~trace
      ~trace_window ~metrics_format ~limit ~policy =
    let machine_members () =
      if Sys.file_exists machine then
        (* Topology files are sent verbatim; --scale applies to
           presets only, matching the server. *)
        [ ("topology", J.String (read_text machine)) ]
      else [ ("machine", J.String machine); ("scale", J.Int scale) ]
    in
    let opt name v f = match v with None -> [] | Some v -> [ (name, f v) ] in
    match op with
    | "ping" | "stats" | "version" | "shutdown" ->
        Ok (J.Obj [ ("op", J.String op) ])
    | "metrics" ->
        Ok
          (J.Obj
             ([ ("op", J.String op) ]
             @
             match metrics_format with
             | None -> []
             | Some f -> [ ("format", J.String f) ]))
    | "slowlog" ->
        Ok
          (J.Obj
             ([ ("op", J.String op) ]
             @ match limit with None -> [] | Some n -> [ ("limit", J.Int n) ]
             ))
    | "map" | "run" | "tune" | "check" -> (
        match source with
        | None -> Error (Printf.sprintf "op '%s' needs a PROGRAM argument" op)
        | Some source ->
            let program =
              if Sys.file_exists source then
                ("source", J.String (read_text source))
              else ("program", J.String source)
            in
            Ok
              (J.Obj
                 ([ ("op", J.String op); program ]
                 @ machine_members ()
                 @ [
                     ("scheme", J.String scheme);
                     ("block", J.Int block);
                     ("stream", J.Bool stream);
                     ("sample_sets", J.Int sample_sets);
                     ("check", J.Bool check);
                     ("nocache", J.Bool nocache);
                   ]
                 @ opt "policy" policy (fun s -> J.String s)
                 @ opt "strategy" strategy (fun s -> J.String s)
                 @ opt "budget" budget (fun b -> J.Int b)
                 @ opt "timeout_ms" timeout_ms (fun t -> J.Int t)
                 @ (if trace then [ ("trace", J.Bool true) ] else [])
                 @
                 match trace_window with
                 | Some w when trace -> [ ("trace_window", J.Int w) ]
                 | _ -> [])))
    | "trace" -> (
        match source with
        | None -> Error "op 'trace' needs a TRACE file argument"
        | Some path ->
            if not (Sys.file_exists path) then
              Error (Printf.sprintf "trace file not found: %s" path)
            else
              Ok
                (J.Obj
                   ([
                      ("op", J.String "trace");
                      ("trace_text", J.String (read_text path));
                    ]
                   @ machine_members ()
                   @ [
                       ("sample_sets", J.Int sample_sets);
                       ("nocache", J.Bool nocache);
                     ]
                   @ opt "policy" policy (fun s -> J.String s)
                   @ opt "timeout_ms" timeout_ms (fun t -> J.Int t))))
    | op -> Error (Printf.sprintf "unknown op '%s'" op)
  in
  let run socket op source machine scale scheme block stream sample_sets check
      strategy budget nocache timeout_ms trace trace_window metrics_format
      limit load concurrency out_json log_level log_format policy =
    let* () = set_log_level log_level in
    let* () = set_log_format log_format in
    let* () = validate_sample_sets sample_sets in
    let* req =
      build_request ~op ~source ~machine ~scale ~scheme ~block ~stream
        ~sample_sets ~check ~strategy ~budget ~nocache ~timeout_ms ~trace
        ~trace_window ~metrics_format ~limit ~policy
    in
    match load with
    | Some total ->
        let* () =
          if total < 1 || concurrency < 1 then
            Error "--load and --concurrency must be positive"
          else Ok ()
        in
        let stats =
          Ctam_serve.Client.load ~socket ~concurrency ~total [ req ]
        in
        if out_json then
          print_endline
            (J.to_string ~minify:true (Ctam_serve.Client.load_stats_json stats))
        else print_endline (Ctam_serve.Client.render_load_stats stats);
        if stats.Ctam_serve.Client.errors > 0 then
          `Error
            ( false,
              Printf.sprintf "%d of %d requests failed"
                stats.Ctam_serve.Client.errors stats.Ctam_serve.Client.requests
            )
        else `Ok ()
    | None -> (
        let* reply = Ctam_serve.Client.one_shot ~socket req in
        match Ctam_serve.Protocol.response_error reply with
        | Some (code, message) ->
            `Error (false, Printf.sprintf "%s: %s" code message)
        | None ->
            let result =
              Option.value ~default:J.Null
                (Ctam_serve.Protocol.response_result reply)
            in
            (* String results (e.g. metrics --format prometheus) are
               printed raw, so the output is directly scrapeable. *)
            (match result with
            | J.String s ->
                print_string s;
                if s = "" || s.[String.length s - 1] <> '\n' then
                  print_newline ()
            | r -> print_endline (J.to_string r));
            `Ok ())
  in
  let socket =
    Arg.(
      value
      & opt string "ctamap.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket to connect to.")
  in
  let op =
    Arg.(
      value & opt string "run"
      & info [ "op" ] ~docv:"OP"
          ~doc:
            "Request operation: map, run, tune, check, trace (replay a \
             Lackey trace file on the daemon), stats, metrics, slowlog, \
             ping, version or shutdown.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "For run: embed the Chrome trace-event JSON of the simulated \
             timeline (and the compile phases) in the reply's result as a \
             $(b,trace) member.")
  in
  let trace_window =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-window" ] ~docv:"N"
          ~doc:"Timeline window width in simulated cycles (with --trace).")
  in
  let metrics_format =
    Arg.(
      value
      & opt (some string) None
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "For the metrics op: $(b,json) (structured snapshot, default) \
             or $(b,prometheus) (text exposition, printed raw).")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N"
          ~doc:"For the slowlog op: return at most $(docv) entries.")
  in
  let source =
    let doc = "DSL source file, or the name of a built-in workload." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Tune search strategy (grid, descent, halving).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N" ~doc:"Tune evaluation budget.")
  in
  let nocache =
    Arg.(
      value & flag
      & info [ "nocache" ]
          ~doc:"Bypass the daemon's plan cache (no lookup, no store).")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "For run: attach the legality report; for tune: verify the \
             winning mapping.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let load =
    Arg.(
      value
      & opt (some int) None
      & info [ "load" ] ~docv:"N"
          ~doc:
            "Load-generator mode: send $(docv) copies of the request and \
             report throughput and latency percentiles instead of the \
             reply.")
  in
  let concurrency =
    Arg.(
      value & opt int 1
      & info [ "concurrency" ] ~docv:"K"
          ~doc:"Concurrent load-generator connections (with --load).")
  in
  let out_json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print load-generator stats as JSON (with --load).")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running mapping daemon and print the result \
          (or, with --load, benchmark it).  The request is built from the \
          same program/machine/scheme flags the one-shot commands take; the \
          reply's result member is the same JSON the one-shot command would \
          print.")
    Term.(
      ret
        (const run $ socket $ op $ source $ machine_arg $ scale_arg
       $ scheme_arg $ block_arg $ stream_arg $ sample_sets_arg $ check_flag
       $ strategy $ budget $ nocache $ timeout_ms $ trace $ trace_window
       $ metrics_format $ limit $ load $ concurrency $ out_json
       $ log_level_arg $ log_format_arg $ policy_arg))

(* [ctamap top]: a polling monitor for a running daemon.  Each tick
   asks for [stats] and a JSON [metrics] snapshot over the wire and
   renders the service at a glance: request rate, per-op latency
   quantiles (from the ctam_serve_request_seconds histograms), plan
   cache hit rate, resident heap, worker utilization and error
   counts. *)
let top_cmd =
  let module J = Ctam_util.Json in
  let module M = Ctam_telemetry.Metrics in
  let mem name j = match j with J.Obj _ -> J.member name j | _ -> None in
  let int_mem name j =
    match mem name j with
    | Some (J.Int i) -> i
    | Some (J.Float f) -> int_of_float f
    | _ -> 0
  in
  let float_mem name j =
    match mem name j with
    | Some (J.Float f) -> f
    | Some (J.Int i) -> float_of_int i
    | _ -> 0.
  in
  let str_mem name j =
    match mem name j with Some (J.String s) -> s | _ -> ""
  in
  (* Rebuild Metrics.value histograms from the snapshot JSON, merged
     over every label set of the family except [by], keyed by [by]'s
     value — e.g. ctam_serve_request_seconds{op,cache} summed over
     cache, per op.  Identical bounds per family make cumulative
     bucket counts directly summable. *)
  let histograms_by ~family ~by metrics_json =
    let families =
      match mem "metrics" metrics_json with Some (J.List l) -> l | _ -> []
    in
    let out = ref [] in
    List.iter
      (fun f ->
        if str_mem "name" f = family then
          let series = match mem "series" f with Some (J.List l) -> l | _ -> [] in
          List.iter
            (fun s ->
              let key =
                match mem "labels" s with
                | Some labels -> str_mem by labels
                | None -> ""
              in
              let buckets =
                match mem "buckets" s with
                | Some (J.List bs) ->
                    List.map
                      (fun b ->
                        let le =
                          match mem "le" b with
                          | Some (J.Float f) -> f
                          | Some (J.Int i) -> float_of_int i
                          | _ -> infinity
                        in
                        (le, int_mem "count" b))
                      bs
                | _ -> []
              in
              let count = int_mem "count" s and sum = float_mem "sum" s in
              let merged =
                match List.assoc_opt key !out with
                | None -> (count, sum, buckets)
                | Some (c, su, bs) ->
                    ( c + count,
                      su +. sum,
                      List.map2
                        (fun (le, a) (_, b) -> (le, a + b))
                        bs buckets )
              in
              out := (key, merged) :: List.remove_assoc key !out)
            series)
      families;
    List.rev_map
      (fun (key, (count, sum, buckets)) ->
        (key, M.Histogram { count; sum; buckets = Array.of_list buckets }))
      !out
  in
  let poll socket =
    let ( let* ) = Result.bind in
    let* stats_reply =
      Ctam_serve.Client.one_shot ~socket (J.Obj [ ("op", J.String "stats") ])
    in
    let* metrics_reply =
      Ctam_serve.Client.one_shot ~socket (J.Obj [ ("op", J.String "metrics") ])
    in
    match
      ( Ctam_serve.Protocol.response_result stats_reply,
        Ctam_serve.Protocol.response_result metrics_reply )
    with
    | Some stats, Some metrics -> Ok (Unix.gettimeofday (), stats, metrics)
    | _ -> Error "daemon returned an error reply"
  in
  let render ~socket ~prev (now, stats, metrics) =
    let served = int_mem "served" stats in
    let errors = int_mem "errors" stats in
    let timeouts = int_mem "timeouts" stats in
    let cached = int_mem "cached" stats in
    let cache = Option.value ~default:J.Null (mem "cache" stats) in
    let hists = histograms_by ~family:"ctam_serve_request_seconds" ~by:"op" metrics in
    let total_sum =
      List.fold_left
        (fun a (_, v) -> match v with M.Histogram h -> a +. h.sum | _ -> a)
        0. hists
    in
    let dt, dserved, dsum =
      match prev with
      | Some (t0, served0, sum0) ->
          (now -. t0, served - served0, total_sum -. sum0)
      | None -> (0., 0, 0.)
    in
    let rps = if dt > 0. then float_of_int dserved /. dt else 0. in
    let workers = max 1 (int_mem "workers" stats) in
    let util =
      if dt > 0. then
        100. *. dsum /. (dt *. float_of_int workers)
      else 0.
    in
    let lookups =
      int_mem "memory_hits" cache + int_mem "memory_misses" cache
    in
    let hits = int_mem "memory_hits" cache + int_mem "disk_hits" cache in
    let hit_rate =
      if lookups > 0 then 100. *. float_of_int hits /. float_of_int lookups
      else 0.
    in
    let heap_mib =
      float_of_int (int_mem "heap_words" (Option.value ~default:J.Null (mem "gc" metrics)))
      *. float_of_int (Sys.word_size / 8)
      /. (1024. *. 1024.)
    in
    Fmt.pr "ctamap top — %s — v%s — uptime %.0fs — %d workers@." socket
      (str_mem "version" stats)
      (float_mem "uptime_seconds" stats)
      workers;
    Fmt.pr
      "requests: %d served (%.1f rps), %d errors, %d timeouts, %d cached@."
      served rps errors timeouts cached;
    Fmt.pr
      "plan cache: %d entries, %.1f MiB, %.1f%% hit rate (mem %d / disk %d)@."
      (int_mem "entries" cache)
      (float_of_int (int_mem "bytes" cache) /. (1024. *. 1024.))
      hit_rate (int_mem "memory_hits" cache) (int_mem "disk_hits" cache);
    (match mem "journal" stats with
    | Some (J.Obj _ as jn) ->
        Fmt.pr "journal: %d records, %.1f MiB, %d rotations, %d failures@."
          (int_mem "records" jn)
          (float_of_int (int_mem "bytes" jn) /. (1024. *. 1024.))
          (int_mem "rotations" jn)
          (int_mem "write_failures" jn)
    | _ -> Fmt.pr "journal: off@.");
    (match mem "slowlog" stats with
    | Some (J.Obj _ as sl) ->
        Fmt.pr "slowlog: %d recorded (threshold %.0f ms)@."
          (int_mem "recorded" sl)
          (float_mem "threshold_ms" sl)
    | _ -> ());
    Fmt.pr "heap: %.1f MiB resident — workers %.1f%% busy@." heap_mib
      (Float.min 100. util);
    Fmt.pr "@.%-10s %9s %10s %10s %10s@." "op" "count" "mean ms" "p50 ms"
      "p99 ms";
    List.iter
      (fun (op, v) ->
        match v with
        | M.Histogram { count; sum; _ } when count > 0 ->
            let q p =
              match M.quantile v p with Some s -> s *. 1000. | None -> 0.
            in
            Fmt.pr "%-10s %9d %10.2f %10.2f %10.2f@." op count
              (sum /. float_of_int count *. 1000.)
              (q 0.5) (q 0.99)
        | _ -> ())
      (List.sort compare hists);
    (now, served, total_sum)
  in
  let run socket interval count log_level =
    let* () = set_log_level log_level in
    let* () =
      if interval <= 0. then Error "--interval must be positive" else Ok ()
    in
    let* () = if count < 0 then Error "--count must be >= 0" else Ok () in
    let clear = count <> 1 && Unix.isatty Unix.stdout in
    let rec loop i prev =
      match poll socket with
      | Error e -> `Error (false, e)
      | Ok sample ->
          if clear then Fmt.pr "\027[2J\027[H%!";
          let prev = render ~socket ~prev sample in
          Fmt.pr "%!";
          if count > 0 && i + 1 >= count then `Ok ()
          else begin
            Unix.sleepf interval;
            loop (i + 1) (Some prev)
          end
    in
    loop 0 None
  in
  let socket =
    Arg.(
      value
      & opt string "ctamap.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket to connect to.")
  in
  let interval =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between polls.")
  in
  let count =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) polls (0 = run until interrupted).  \
             $(b,--count 1) prints one snapshot without clearing the \
             screen.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live monitor for a running mapping daemon: polls the stats and \
          metrics wire ops and renders request rate, per-op latency \
          quantiles, plan-cache hit rate, journal and slowlog state, \
          resident heap and worker utilization.")
    Term.(ret (const run $ socket $ interval $ count $ log_level_arg))

(* [ctamap simtrace]: replay an external memory-access trace on a
   simulated hierarchy.  The frontend streams the file (gzip accepted)
   through fixed-size chunk buffers, so trace size is unbounded; the
   engine sees the same generator-backed streams the DSL compiler
   produces, and --sample-sets / --policy compose unchanged. *)
let simtrace_cmd =
  let module Ingest = Ctam_tracein.Ingest in
  let run file machine scale policy cores interleave instr lossy fold_bits
      rebase split sample_sets json log_level metrics_out =
    let* () = set_log_level log_level in
    let* machine = get_machine machine scale in
    let* machine = apply_policy policy machine in
    let* () = validate_sample_sets sample_sets in
    let* interleave =
      match interleave with
      | "round-robin" | "rr" -> Ok Ingest.Round_robin
      | "tagged" -> Ok Ingest.Tagged
      | s ->
          Error
            (Printf.sprintf
               "unknown --interleave '%s' (round-robin or tagged)" s)
    in
    let opts =
      { Ingest.cores; instr; lossy; fold_bits; rebase; split; interleave }
    in
    match
      Ingest.run ~sample_sets ~machine opts (Ctam_tracein.Reader.File file)
    with
    | exception Ingest.Error e -> `Error (false, e)
    | exception Sys_error e -> `Error (false, e)
    | stats, scan ->
        let* () = write_metrics metrics_out in
        if json then
          print_endline
            (Ctam_util.Json.to_string
               (Ingest.report_json ~machine opts scan stats))
        else begin
          Fmt.pr "%s on %s: %d lines, %d records, %d malformed@." file
            machine.Topology.name scan.Ingest.scanned_lines scan.Ingest.records
            scan.Ingest.malformed;
          Array.iteri
            (fun c n -> Fmt.pr "  core %2d: %d accesses@." c n)
            scan.Ingest.per_core;
          Fmt.pr "%a@." Stats.pp stats
        end;
        `Ok ()
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Trace file: Valgrind Lackey text ($(b,valgrind --tool=lackey \
             --trace-mem=yes)), optionally gzip-compressed.")
  in
  let cores =
    Arg.(
      value & opt int 1
      & info [ "cores" ] ~docv:"K"
          ~doc:"Interleave the trace across $(docv) simulated cores.")
  in
  let interleave =
    Arg.(
      value
      & opt string "round-robin"
      & info [ "interleave" ] ~docv:"MODE"
          ~doc:
            "Multi-core dealing: $(b,round-robin) (records to cores in \
             arrival order) or $(b,tagged) (honour $(b,N:) core prefixes and \
             $(b,@T) timestamps).")
  in
  let instr =
    Arg.(
      value & flag
      & info [ "instr" ]
          ~doc:"Replay $(b,I) instruction fetches too (default: data only).")
  in
  let lossy =
    Arg.(
      value & flag
      & info [ "lossy" ]
          ~doc:
            "Count malformed lines and keep going (default: fail with the \
             line position).")
  in
  let fold_bits =
    Arg.(
      value
      & opt (some int) None
      & info [ "fold-bits" ] ~docv:"B"
          ~doc:
            "Fold addresses into a 2^$(docv)-byte window (after any \
             rebasing), so a sparse address space exercises a small \
             hierarchy.")
  in
  let rebase =
    Arg.(
      value & flag
      & info [ "rebase" ]
          ~doc:"Subtract the smallest address in the trace before mapping.")
  in
  let split =
    Arg.(
      value
      & opt (some int) None
      & info [ "split" ] ~docv:"BYTES"
          ~doc:
            "Expand each record into one access per $(docv)-byte line its \
             [addr, addr+size) span touches (default: base address only).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the ctam-simtrace-v1 JSON report.")
  in
  Cmd.v
    (Cmd.info "simtrace"
       ~doc:
         "Replay a memory-access trace (Valgrind Lackey text format) on the \
          simulated cache hierarchy and report hit/miss statistics.  \
          Composes with --policy, --sample-sets and topology files; see the \
          TRACE FORMATS section of $(b,ctamap --help).")
    Term.(
      ret
        (const run $ file $ machine_arg $ scale_arg $ policy_arg $ cores
       $ interleave $ instr $ lossy $ fold_bits $ rebase $ split
       $ sample_sets_arg $ json $ log_level_arg $ metrics_out_arg))

(* [ctamap cache stats|purge]: maintenance of the shared on-disk cache
   directory (compiled plans + tune outcomes).  Safe against a running
   daemon: entries are immutable and content-addressed. *)
let cache_cmd =
  let module Cachetool = Ctam_serve.Cachetool in
  let module J = Ctam_util.Json in
  let dir_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:
            "Cache directory (the daemon's --cache-dir, or tune's --cache).")
  in
  let prefix_arg =
    let doc =
      Printf.sprintf "Restrict to one entry family: %s."
        (String.concat " or "
           (List.map
              (fun p -> Printf.sprintf "$(b,%s)" p)
              Cachetool.all_prefixes))
    in
    Arg.(value & opt (some string) None & info [ "prefix" ] ~docv:"PREFIX" ~doc)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as JSON.")
  in
  let check_prefix = function
    | None -> Ok ()
    | Some p when List.mem p Cachetool.all_prefixes -> Ok ()
    | Some p ->
        Error
          (Printf.sprintf "unknown --prefix '%s' (known: %s)" p
             (String.concat ", " Cachetool.all_prefixes))
  in
  let parse_duration s =
    let fail () =
      Error
        (Printf.sprintf "bad duration '%s' (use e.g. 90, 45s, 30m, 12h, 7d)" s)
    in
    let n = String.length s in
    if n = 0 then fail ()
    else
      let unit, digits =
        match s.[n - 1] with
        | 's' -> (1., String.sub s 0 (n - 1))
        | 'm' -> (60., String.sub s 0 (n - 1))
        | 'h' -> (3600., String.sub s 0 (n - 1))
        | 'd' -> (86400., String.sub s 0 (n - 1))
        | _ -> (1., s)
      in
      match float_of_string_opt digits with
      | Some v when v >= 0. -> Ok (v *. unit)
      | _ -> fail ()
  in
  let stats_run dir prefix json =
    let* () = check_prefix prefix in
    if json then
      print_endline (J.to_string (Cachetool.stats_json ?prefix ~dir ()))
    else begin
      let now = Unix.gettimeofday () in
      List.iter
        (fun f ->
          Fmt.pr "%s: %d entries, %d bytes" f.Cachetool.prefix f.entries
            f.bytes;
          (match (f.oldest, f.newest) with
          | Some o, Some n ->
              Fmt.pr " (ages %.0fs-%.0fs)" (max 0. (now -. n))
                (max 0. (now -. o))
          | _ -> ());
          Fmt.pr "@.")
        (Cachetool.stats ?prefix ~dir ())
    end;
    `Ok ()
  in
  let purge_run dir prefix older_than json metrics_out =
    let* () = check_prefix prefix in
    let* older_than =
      match older_than with
      | None -> Ok None
      | Some s -> Result.map Option.some (parse_duration s)
    in
    if json then
      print_endline
        (J.to_string (Cachetool.purge_json ?prefix ?older_than ~dir ()))
    else
      List.iter
        (fun r ->
          Fmt.pr "%s: removed %d entries (%d bytes), kept %d@."
            r.Cachetool.p_prefix r.removed r.removed_bytes r.kept)
        (Cachetool.purge ?prefix ?older_than ~dir ());
    let* () = write_metrics metrics_out in
    `Ok ()
  in
  let older_than_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "older-than" ] ~docv:"DUR"
          ~doc:
            "Only remove entries whose file is older than $(docv): seconds, \
             or a number with an $(b,s)/$(b,m)/$(b,h)/$(b,d) suffix.")
  in
  let stats_cmd =
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Per-family entry counts, byte totals and entry ages of a cache \
            directory.")
      Term.(ret (const stats_run $ dir_arg $ prefix_arg $ json_arg))
  in
  let purge_cmd =
    Cmd.v
      (Cmd.info "purge"
         ~doc:
           "Remove cache entries (optionally one family, optionally only \
            entries older than --older-than).  Safe while a daemon is \
            serving from the directory: entries are immutable and \
            content-addressed, so concurrent readers recompute at worst.")
      Term.(
        ret
          (const purge_run $ dir_arg $ prefix_arg $ older_than_arg $ json_arg
         $ metrics_out_arg))
  in
  let default = Term.(ret (const (`Help (`Pager, Some "cache")))) in
  Cmd.group ~default
    (Cmd.info "cache"
       ~doc:"Maintenance of the shared on-disk plan/tune cache directory.")
    [ stats_cmd; purge_cmd ]

let () =
  (* Hook Parallel.map into the metrics registry; libraries never
     install monitors themselves. *)
  Ctam_telemetry.Runtime.install ();
  let doc = "cache-topology-aware computation mapping (PLDI 2010)" in
  let man =
    [
      `S "REPLACEMENT POLICIES";
      `P
        "Cache levels replace lines by LRU unless a topology file or a \
         $(b,--policy) override selects otherwise.  $(b,--policy NAME) \
         applies to every level; $(b,--policy L1=plru,L2=qlru) binds per \
         level (later bindings win).  Available policies:";
    ]
    @ List.map
        (fun (n, d) -> `I (Printf.sprintf "$(b,%s)" n, d))
        Policy.all
    @ [
        `S "TRACE FORMATS";
        `P
          "$(b,ctamap simtrace) (and the daemon's $(b,trace) op) accept \
           these line notations, freely mixed in one file:";
      ]
    @ List.map
        (fun (n, d) -> `I (Printf.sprintf "$(b,%s)" n, d))
        Ctam_tracein.Ingest.trace_formats
  in
  let info =
    Cmd.info "ctamap" ~version:Ctam_exp.Build_info.version ~doc ~man
  in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            machines_cmd; groups_cmd; map_cmd; run_cmd; simulate_cmd;
            simtrace_cmd; compare_cmd; tune_cmd; codegen_cmd; check_cmd;
            dump_cmd; emit_c_cmd; reuse_cmd; trace_cmd; report_cmd;
            experiment_cmd; cache_cmd; serve_cmd; client_cmd; top_cmd;
          ]))
