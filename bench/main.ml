(* Benchmark harness.

   Usage:
     bench/main.exe                  run every paper experiment (full sizes)
     bench/main.exe --quick          quarter-cost configuration
     bench/main.exe fig13 fig15      run selected experiments
     bench/main.exe micro            run the Bechamel micro-benchmarks
     bench/main.exe scale-sweep      wall-clock of exact / streamed /
                                     set-sampled simulation across problem
                                     scales (--json for JSONL rows)
     bench/main.exe policy-sweep     replacement-policy differential sweep:
                                     synthetic reference strings x policies
                                     x machines, with gating trend
                                     invariants (--json for JSONL rows)
     bench/main.exe --json [M...]    machine-readable trajectories: one JSON
                                     object per scheme x machine (JSONL),
                                     machines default to the three
                                     commercial ones
     bench/main.exe --scale N ...    override the cache-capacity divisor of
                                     the experiments / sweep machines
                                     (default: 16 full, 64 quick)
     bench/main.exe --jobs N ...     domains for the sweep / experiment
                                     drivers (default: $CTAM_JOBS or
                                     Domain.recommended_domain_count)

   One runner per table/figure of the paper regenerates the
   corresponding rows/series (see DESIGN.md's per-experiment index and
   EXPERIMENTS.md for measured-vs-paper numbers).  The JSON mode is
   what run_bench_incremental.sh snapshots, so bench trajectories diff
   cleanly across PRs; the simulated statistics are byte-identical at
   any --jobs (only the harness telemetry fields appended per row —
   wall_seconds, major_words, pool_utilization — vary run to run). *)

open Ctam_exp

(* --- Bechamel micro-benchmarks of the core algorithms --------------- *)

let micro ?(scale = 16) () =
  let open Bechamel in
  let open Toolkit in
  let machine = Ctam_arch.Machines.dunnington ~scale () in
  let prog = Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.galgel in
  let nest = List.hd (Ctam_ir.Program.parallel_nests prog) in
  let params = Ctam_core.Mapping.default_params in
  let bm, layout =
    Ctam_blocks.Block_map.for_program ~block_size:2048 ~line:64 prog
  in
  let grouping = Ctam_blocks.Tags.group nest bm in
  let groups = grouping.Ctam_blocks.Tags.groups in
  let dg = Ctam_deps.Dep_graph.create (Array.length groups) in
  let assignment = Ctam_core.Distribute.run machine groups in
  let stream = Ctam_core.Trace.serial layout nest in
  let hierarchy = Ctam_cachesim.Hierarchy.create machine in
  let tag_a = groups.(0).Ctam_blocks.Iter_group.tag in
  let tag_b = groups.(Array.length groups - 1).Ctam_blocks.Iter_group.tag in
  (* The serial stream as a phase, for the heap-vs-scan engine pair. *)
  let serial_phase =
    let p = Array.make machine.Ctam_arch.Topology.num_cores [||] in
    p.(0) <- stream;
    [ p ]
  in
  let tests =
    Test.make_grouped ~name:"ctam" ~fmt:"%s %s"
      [
        Test.make ~name:"bitset-dot (tag affinity)"
          (Staged.stage (fun () -> Ctam_blocks.Bitset.dot tag_a tag_b));
        Test.make ~name:"bitset-iter (word-skipping walk)"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               Ctam_blocks.Bitset.iter (fun j -> acc := !acc + j) tag_a;
               !acc));
        Test.make ~name:"tagging (Tags.group, small galgel)"
          (Staged.stage (fun () -> Ctam_blocks.Tags.group nest bm));
        Test.make ~name:"distribute (Figure 6)"
          (Staged.stage (fun () -> Ctam_core.Distribute.run machine groups));
        Test.make ~name:"schedule (Figure 7)"
          (Staged.stage (fun () ->
               Ctam_core.Schedule.run machine assignment dg));
        Test.make ~name:"simulate (serial stream)"
          (Staged.stage (fun () ->
               Ctam_cachesim.Engine.run_serial hierarchy stream));
        Test.make ~name:"simulate (serial stream, scan engine)"
          (Staged.stage (fun () ->
               Ctam_cachesim.Engine.run_reference hierarchy serial_phase));
        Test.make ~name:"parallel-map (8 tasks, 2 domains)"
          (Staged.stage (fun () ->
               Ctam_util.Parallel.map ~domains:2
                 (fun x -> x * x)
                 [ 1; 2; 3; 4; 5; 6; 7; 8 ]));
        Test.make ~name:"compile TopologyAware end-to-end"
          (Staged.stage (fun () ->
               Ctam_core.Mapping.compile ~params Ctam_core.Mapping.Topology_aware
                 ~machine prog));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  print_endline "\nMicro-benchmarks (monotonic clock, ns per run)";
  print_endline "----------------------------------------------";
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some (t :: _) -> Printf.printf "%-45s %12.0f ns\n" name t
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        tbl)
    results

(* --- machine-readable sweep ------------------------------------------ *)

let json_sweep ?jobs ?(scale = 16) ~quick machines =
  let machines =
    match machines with
    | [] -> [ "harpertown"; "nehalem"; "dunnington" ]
    | ms -> ms
  in
  List.iter
    (fun name ->
      match Ctam_arch.Machines.by_name ~scale name with
      | machine ->
          (* Harness telemetry is appended here, per machine, so the
             library sweep itself stays byte-deterministic at any
             --jobs (asserted by test_exp). *)
          let gc0 = Gc.quick_stat () in
          let busy0, cap0 = Ctam_telemetry.Runtime.pool_totals () in
          let t0 = Unix.gettimeofday () in
          let objs = Run_report.bench_sweep ?jobs ~quick ~machine () in
          let wall = Unix.gettimeofday () -. t0 in
          let gc1 = Gc.quick_stat () in
          let busy1, cap1 = Ctam_telemetry.Runtime.pool_totals () in
          let module J = Ctam_util.Json in
          let harness =
            [
              ("wall_seconds", J.Float wall);
              ("major_words", J.Float (gc1.Gc.major_words -. gc0.Gc.major_words));
              ( "pool_utilization",
                if cap1 -. cap0 > 0. then
                  J.Float ((busy1 -. busy0) /. (cap1 -. cap0))
                else J.Null );
            ]
          in
          List.iter
            (fun obj ->
              let obj =
                match obj with
                | J.Obj members -> J.Obj (members @ harness)
                | other -> other
              in
              print_endline (J.to_string ~minify:true obj))
            objs
      | exception Not_found ->
          Printf.eprintf "unknown machine %s\n" name;
          exit 1)
    machines

(* --- scale sweep ----------------------------------------------------- *)

(* The scale-sweep micro of PR 7: wall-clock of one full simulation per
   kernel x scheme under three engine modes — exact dense arrays,
   generator-backed streams, and streamed + set-sampled — across
   problem scales.  A sweep scale S means "S/16 x today's default
   problem": the machine runs at capacity divisor max(1, 256/S) (so
   S=256 is the paper's full-size Dunnington) and each kernel's linear
   size grows by sqrt(S/16) (quadratic iteration spaces then scale
   their access volume by ~S/16).  Streamed stats are asserted
   bit-identical to exact; sampled stats report their relative cycle
   error.  Timings are taken serially (no domains) so the walls mean
   something. *)

let isqrt n =
  let r = int_of_float (sqrt (float_of_int n) +. 0.5) in
  if r * r > n then r - 1 else r

(* Largest power of two <= [requested] dividing every cache's set
   count — the largest legal sampling factor for the machine. *)
let sample_factor_for machine requested =
  List.fold_left
    (fun acc (c : Ctam_arch.Topology.cache_params) ->
      let sets =
        c.Ctam_arch.Topology.size_bytes
        / (c.Ctam_arch.Topology.assoc * c.Ctam_arch.Topology.line)
      in
      let rec fit f = if f <= 1 || sets mod f = 0 then max 1 f else fit (f / 2) in
      min acc (fit requested))
    requested
    (Ctam_arch.Topology.caches machine)

let scale_sweep ~quick ~json ~scales ~sample_sets () =
  let module J = Ctam_util.Json in
  let module Mapping = Ctam_core.Mapping in
  let module Stats = Ctam_cachesim.Stats in
  let open Ctam_workloads in
  let scales =
    match scales with
    | Some ss -> ss
    | None -> if quick then [ 16; 64 ] else [ 64; 256 ]
  in
  let kernels =
    if quick then [ Suite.galgel; Suite.equake; Suite.cg; Suite.sp ]
    else Suite.all
  in
  let schemes = [ Mapping.Base; Mapping.Combined ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  if not json then
    print_endline
      "Scale sweep: simulation wall-clock, exact vs streamed vs set-sampled \
       (Dunnington)";
  List.iter
    (fun s ->
      let machine = Ctam_arch.Machines.dunnington ~scale:(max 1 (256 / s)) () in
      let factor = sample_factor_for machine sample_sets in
      let mult = max 1 (isqrt (max 1 (s / 16))) in
      let rows = ref [] in
      List.iter
        (fun k ->
          let prog =
            Kernel.program ~size:(k.Kernel.default_size * mult) k
          in
          List.iter
            (fun scheme ->
              let dense_c, t_compile =
                time (fun () -> Mapping.compile scheme ~machine prog)
              in
              let stream_c, t_compile_stream =
                time (fun () ->
                    Mapping.compile ~stream:true scheme ~machine prog)
              in
              let exact, t_exact =
                time (fun () -> Mapping.simulate dense_c)
              in
              let streamed, t_stream =
                time (fun () -> Mapping.simulate stream_c)
              in
              if streamed <> exact then begin
                Printf.eprintf
                  "scale-sweep: streamed stats diverge from exact (%s %s \
                   scale %d)\n"
                  k.Kernel.name
                  (Mapping.scheme_name scheme)
                  s;
                exit 1
              end;
              let sampled, t_sample =
                time (fun () ->
                    Mapping.simulate ~sample_sets:factor stream_c)
              in
              let err =
                List.assoc "cycles"
                  (Stats.rel_errors ~exact ~approx:sampled)
              in
              let speedup = t_exact /. Float.max 1e-9 t_sample in
              if json then
                print_endline
                  (J.to_string ~minify:true
                     (J.Obj
                        [
                          ("experiment", J.String "scale_sweep");
                          ("machine", J.String machine.Ctam_arch.Topology.name);
                          ("scale", J.Int s);
                          ("kernel", J.String k.Kernel.name);
                          ("scheme", J.String (Mapping.scheme_name scheme));
                          ("accesses", J.Int exact.Stats.total_accesses);
                          ("sample_sets", J.Int factor);
                          ("cycles_exact", J.Int exact.Stats.cycles);
                          ("cycles_sampled", J.Int sampled.Stats.cycles);
                          ("rel_err_cycles", J.Float err);
                          ("compile_seconds", J.Float t_compile);
                          ( "compile_stream_seconds",
                            J.Float t_compile_stream );
                          ("sim_exact_seconds", J.Float t_exact);
                          ("sim_stream_seconds", J.Float t_stream);
                          ("sim_sampled_seconds", J.Float t_sample);
                          ("sim_speedup", J.Float speedup);
                        ]))
              else
                rows :=
                  [
                    k.Kernel.name;
                    Mapping.scheme_name scheme;
                    string_of_int exact.Stats.total_accesses;
                    Printf.sprintf "%.3f" t_compile;
                    Printf.sprintf "%.3f" t_exact;
                    Printf.sprintf "%.3f" t_stream;
                    Printf.sprintf "%.3f" t_sample;
                    Printf.sprintf "%.1fx" speedup;
                    Printf.sprintf "%.2f%%" (100. *. err);
                  ]
                  :: !rows)
            schemes)
        kernels;
      if not json then
        Printf.printf "\n## scale %d (machine /%d, size x%d, sample 1/%d)\n%s"
          s
          (max 1 (256 / s))
          mult factor
          (Report.table
             ~header:
               [
                 "kernel";
                 "scheme";
                 "accesses";
                 "compile_s";
                 "exact_s";
                 "stream_s";
                 "sampled_s";
                 "sim speedup";
                 "cycle err";
               ]
             (List.rev !rows)))
    scales

(* --- policy sweep ---------------------------------------------------- *)

(* Differential validation of the replacement policies, cachetrace
   style: fixed synthetic reference strings (sequential cyclic and
   uniform-random over 8KB / 128KB / 1MB footprints) are replayed
   against every policy x machine, single-core, at the paper's
   full-size caches (every L1 is 32KB 8-way x 64B, so 8KB fits, 128KB
   thrashes L1 and 1MB thrashes harder).  The sweep is gated: it
   EXITS NON-ZERO when a policy breaks one of the trend invariants
   below, so `dune runtest` (via tools/check_policies.sh) and the
   bench archive both re-certify the policy layer on every change.

   Invariants asserted per machine:
   - LRU-as-policy is bit-identical to the seed reference engine
     (Engine.run_reference) on every workload;
   - per policy and pattern, the L1 hit rate declines monotonically as
     the footprint grows, and the memory rate never declines;
   - every policy serves >= 85% of the 8KB sequential pass from L1 (it
     fits: no victim is ever consulted);
   - on the L1-thrashing 128KB cyclic scan, where true LRU degenerates
     to zero hits, no policy does worse than LRU, and random victim
     selection does strictly better (the classic thrash-resistance of
     not having a worst case);
   - random:SEED is deterministic (same seed => identical stats). *)
let policy_sweep ~quick ~json () =
  let module J = Ctam_util.Json in
  let module Stats = Ctam_cachesim.Stats in
  let module Engine = Ctam_cachesim.Engine in
  let module Hierarchy = Ctam_cachesim.Hierarchy in
  let module Topology = Ctam_arch.Topology in
  let module Policy = Ctam_arch.Policy in
  let policies =
    [
      Policy.Lru; Policy.Fifo; Policy.Plru; Policy.Qlru; Policy.Mru;
      Policy.Random 42;
    ]
  in
  let machines =
    if quick then [ "dunnington" ]
    else [ "harpertown"; "nehalem"; "dunnington" ]
  in
  let line = 64 in
  let footprints = [ (8 * 1024, "8KB"); (128 * 1024, "128KB");
                     (1024 * 1024, "1MB") ] in
  let total = if quick then 1 lsl 16 else 1 lsl 18 in
  let sequential fp =
    let nlines = fp / line in
    Array.init total (fun i ->
        Engine.encode_access ~addr:(i mod nlines * line)
          ~write:(i land 3 = 3))
  in
  let random_trace fp =
    let nlines = fp / line in
    let s = ref 0x2545f4914f6cd in
    Array.init total (fun i ->
        let x = !s in
        let x = x lxor (x lsl 13) land max_int in
        let x = x lxor (x lsr 7) in
        let x = x lxor (x lsl 17) land max_int in
        s := x;
        Engine.encode_access ~addr:(x mod nlines * line)
          ~write:(i land 3 = 3))
  in
  let patterns = [ ("seq", sequential); ("rand", random_trace) ] in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "policy-sweep: %s\n" msg;
        exit 1)
      fmt
  in
  let failures = ref 0 in
  List.iter
    (fun mname ->
      let base = Ctam_arch.Machines.by_name ~scale:1 mname in
      let phase_of trace =
        let p = Array.make base.Topology.num_cores [||] in
        p.(0) <- trace;
        [ p ]
      in
      (* (policy, pattern, footprint) -> stats, for the cross-policy
         assertions and the report. *)
      let results = ref [] in
      let simulate policy trace =
        let machine = Topology.with_policy_spec [ (None, policy) ] base in
        Engine.run (Hierarchy.create machine) (phase_of trace)
      in
      let l1_rate st =
        let l = Stats.level st 1 in
        float_of_int l.Stats.hits
        /. float_of_int (max 1 (l.Stats.hits + l.Stats.misses))
      in
      List.iter
        (fun policy ->
          List.iter
            (fun (pname, gen) ->
              List.iter
                (fun (fp, fpname) ->
                  let trace = gen fp in
                  let st = simulate policy trace in
                  (* Differential gate: the policy layer must not have
                     perturbed the seed LRU engine. *)
                  (if Policy.equal policy Policy.Lru then
                     let reference =
                       Engine.run_reference
                         (Hierarchy.create
                            (Topology.with_policy_spec [ (None, policy) ]
                               base))
                         (phase_of trace)
                     in
                     if st <> reference then
                       fail "LRU diverges from the reference engine (%s %s %s)"
                         mname pname fpname);
                  (if policy = Policy.Random 42 then
                     let again = simulate policy trace in
                     if st <> again then
                       fail "random:42 is not deterministic (%s %s %s)" mname
                         pname fpname);
                  results := ((policy, pname, fp), st) :: !results)
                footprints)
            patterns)
        policies;
      let find policy pname fp = List.assoc (policy, pname, fp) !results in
      let check cond fmt =
        Printf.ksprintf
          (fun msg ->
            if not cond then begin
              incr failures;
              Printf.eprintf "policy-sweep: FAIL %s: %s\n" mname msg
            end)
          fmt
      in
      List.iter
        (fun policy ->
          let ps = Policy.to_string policy in
          List.iter
            (fun (pname, _) ->
              (* L1 hit rate declines, memory rate grows, with footprint. *)
              let rec trend = function
                | (fa, na) :: ((fb, nb) :: _ as rest) ->
                    let a = find policy pname fa
                    and b = find policy pname fb in
                    check
                      (l1_rate a +. 1e-9 >= l1_rate b)
                      "%s %s L1 hit rate rose %s -> %s (%.4f -> %.4f)" ps
                      pname na nb (l1_rate a) (l1_rate b);
                    check
                      (Stats.mem_rate a <= Stats.mem_rate b +. 1e-9)
                      "%s %s memory rate fell %s -> %s (%.4f -> %.4f)" ps
                      pname na nb (Stats.mem_rate a) (Stats.mem_rate b);
                    trend rest
                | _ -> ()
              in
              trend footprints)
            patterns;
          (* The 8KB sequential pass fits every L1. *)
          let st = find policy "seq" (8 * 1024) in
          check
            (l1_rate st >= 0.85)
            "%s seq 8KB L1 hit rate %.4f < 0.85" ps (l1_rate st))
        policies;
      (* LRU's worst case: the cyclic scan just over L1.  Nothing may
         do worse, and random victims must do strictly better. *)
      let lru = find Policy.Lru "seq" (128 * 1024) in
      List.iter
        (fun policy ->
          let st = find policy "seq" (128 * 1024) in
          check
            (l1_rate st +. 1e-9 >= l1_rate lru)
            "%s L1 hit rate %.4f below lru %.4f on the 128KB cyclic scan"
            (Policy.to_string policy) (l1_rate st) (l1_rate lru))
        policies;
      let rnd = find (Policy.Random 42) "seq" (128 * 1024) in
      check
        (l1_rate rnd > l1_rate lru)
        "random:42 L1 hit rate %.4f not above lru %.4f on the 128KB cyclic \
         scan"
        (l1_rate rnd) (l1_rate lru);
      (* Report. *)
      if json then
        List.iter
          (fun ((policy, pname, fp), st) ->
            print_endline
              (J.to_string ~minify:true
                 (J.Obj
                    [
                      ("experiment", J.String "policy_sweep");
                      ("machine", J.String base.Topology.name);
                      ("policy", J.String (Policy.to_string policy));
                      ("pattern", J.String pname);
                      ("footprint_bytes", J.Int fp);
                      ("accesses", J.Int st.Stats.total_accesses);
                      ("l1_hit_rate", J.Float (l1_rate st));
                      ("mem_rate", J.Float (Stats.mem_rate st));
                      ("cycles", J.Int st.Stats.cycles);
                    ])))
          (List.rev !results)
      else begin
        let rows =
          List.rev_map
            (fun ((policy, pname, fp), st) ->
              [
                Policy.to_string policy;
                pname;
                string_of_int (fp / 1024) ^ "KB";
                Printf.sprintf "%.2f%%" (100. *. l1_rate st);
                Printf.sprintf "%.2f%%" (100. *. Stats.mem_rate st);
                string_of_int st.Stats.cycles;
              ])
            !results
        in
        Printf.printf "\n## policy sweep: %s (%d accesses per workload)\n%s"
          base.Topology.name total
          (Report.table
             ~header:
               [ "policy"; "pattern"; "footprint"; "L1 hit"; "mem"; "cycles" ]
             rows)
      end)
    machines;
  if !failures > 0 then begin
    Printf.eprintf "policy-sweep: %d invariant(s) violated\n" !failures;
    exit 1
  end;
  if not json then print_endline "policy-sweep: all invariants hold"

(* --- serve sweep ----------------------------------------------------- *)

(* Throughput and latency tail of the mapping daemon, cold vs warm: an
   in-process server on a temp socket, loaded by the library's own
   load generator.  The cold phase sends [nocache] requests (every
   answer runs the full compile + simulate pipeline); the warm phase
   repeats one cacheable request after priming, so it measures the
   plan-cache fast path (memory-LRU hit + one frame round trip).  The
   warm/cold throughput ratio is the headline number: it is what a
   mapping service buys over forking one-shot processes.

   The daemon runs with its audit journal on and the slowlog threshold
   at zero, and each phase row carries the delta of journal records
   written and slowlog entries noted during that phase — so a bench
   run also exercises (and prices) the observability path. *)
let serve_sweep ~quick ~json ~jobs () =
  let module J = Ctam_util.Json in
  let module Server = Ctam_serve.Server in
  let module Client = Ctam_serve.Client in
  let workers = Option.value jobs ~default:4 in
  let concurrency = workers in
  let program, machine_name, scale = ("cg", "harpertown", 64) in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ctam-serve-sweep-%d.sock" (Unix.getpid ()))
  in
  let journal =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ctam-serve-sweep-%d.jsonl" (Unix.getpid ()))
  in
  let request nocache =
    J.Obj
      [
        ("op", J.String "run");
        ("program", J.String program);
        ("machine", J.String machine_name);
        ("scale", J.Int scale);
        ("scheme", J.String "combined");
        ("nocache", J.Bool nocache);
      ]
  in
  let server =
    Server.create
      {
        Server.default_config with
        Server.socket;
        workers;
        journal_path = Some journal;
        slow_ms = 0.;
      }
  in
  let daemon = Domain.spawn (fun () -> Server.serve server) in
  (* Journal records written / slowlog entries noted so far, read over
     the wire so the bench sees exactly what an operator would. *)
  let obs_counters () =
    match Client.one_shot ~socket (J.Obj [ ("op", J.String "stats") ]) with
    | Ok reply ->
        let int_at path =
          let j =
            List.fold_left
              (fun j name -> Option.bind j (J.member name))
              (J.member "result" reply) path
          in
          match j with Some (J.Int n) -> n | _ -> 0
        in
        (int_at [ "journal"; "records" ], int_at [ "slowlog"; "recorded" ])
    | Error _ -> (0, 0)
  in
  let cold, warm, (cold_jr, cold_sl), (warm_jr, warm_sl) =
    Fun.protect
      ~finally:(fun () ->
        ignore (Client.one_shot ~socket (J.Obj [ ("op", J.String "shutdown") ]));
        Domain.join daemon;
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ journal; journal ^ ".1" ])
      (fun () ->
        let cold_n, warm_n = if quick then (8, 160) else (16, 400) in
        let jr0, sl0 = obs_counters () in
        let cold =
          Client.load ~socket ~concurrency ~total:cold_n [ request true ]
        in
        let jr1, sl1 = obs_counters () in
        (* Prime the cache once so the warm phase never pays a miss. *)
        ignore (Client.one_shot ~socket (request false));
        let jr2, sl2 = obs_counters () in
        let warm =
          Client.load ~socket ~concurrency ~total:warm_n [ request false ]
        in
        let jr3, sl3 = obs_counters () in
        (cold, warm, (jr1 - jr0, sl1 - sl0), (jr3 - jr2, sl3 - sl2)))
  in
  let speedup = warm.Client.rps /. Float.max 1e-9 cold.Client.rps in
  if json then begin
    let row phase (s : Client.load_stats) (jr, sl) =
      print_endline
        (J.to_string ~minify:true
           (J.Obj
              [
                ("experiment", J.String "serve_sweep");
                ("phase", J.String phase);
                ("program", J.String program);
                ("machine", J.String machine_name);
                ("scale", J.Int scale);
                ("workers", J.Int workers);
                ("concurrency", J.Int concurrency);
                ("requests", J.Int s.Client.requests);
                ("ok", J.Int s.Client.ok);
                ("cached", J.Int s.Client.cached);
                ("errors", J.Int s.Client.errors);
                ("rps", J.Float s.Client.rps);
                ("mean_ms", J.Float s.Client.mean_ms);
                ("p50_ms", J.Float s.Client.p50_ms);
                ("p90_ms", J.Float s.Client.p90_ms);
                ("p99_ms", J.Float s.Client.p99_ms);
                ("journal_records", J.Int jr);
                ("slowlog_recorded", J.Int sl);
                ("warm_over_cold", if phase = "warm" then J.Float speedup else J.Null);
              ]))
    in
    row "cold" cold (cold_jr, cold_sl);
    row "warm" warm (warm_jr, warm_sl)
  end
  else begin
    let row phase (s : Client.load_stats) (jr, sl) =
      [
        phase;
        string_of_int s.Client.requests;
        string_of_int s.Client.cached;
        string_of_int s.Client.errors;
        Printf.sprintf "%.1f" s.Client.rps;
        Printf.sprintf "%.2f" s.Client.p50_ms;
        Printf.sprintf "%.2f" s.Client.p90_ms;
        Printf.sprintf "%.2f" s.Client.p99_ms;
        string_of_int jr;
        string_of_int sl;
      ]
    in
    Printf.printf
      "Serve sweep: %s on %s /%d, %d workers, %d connections\n%s\n\
       warm/cold throughput: %.1fx\n"
      program machine_name scale workers concurrency
      (Report.table
         ~header:
           [ "phase"; "requests"; "cached"; "errors"; "req/s"; "p50_ms";
             "p90_ms"; "p99_ms"; "journal"; "slowlog" ]
         [ row "cold" cold (cold_jr, cold_sl); row "warm" warm (warm_jr, warm_sl) ])
      speedup
  end

(* --- experiment driver ---------------------------------------------- *)

(* Extract "--FLAG N" / "--FLAG=N" (an integer option) from the
   argument list. *)
let extract_int_flag flag args =
  let prefix = flag ^ "=" in
  let plen = String.length prefix in
  let bad got =
    Printf.eprintf "%s expects a positive integer%s\n" flag got;
    exit 1
  in
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | f :: n :: rest when f = flag -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | _ -> bad (", got " ^ n))
    | [ f ] when f = flag -> bad ""
    | arg :: rest when String.length arg > plen && String.sub arg 0 plen = prefix
      -> (
        let n = String.sub arg plen (String.length arg - plen) in
        match int_of_string_opt n with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | _ -> bad (", got " ^ n))
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] args

let extract_jobs args = extract_int_flag "--jobs" args

let () =
  Ctam_telemetry.Runtime.install ();
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs, args = extract_jobs args in
  let scale, args = extract_int_flag "--scale" args in
  let sample_sets, args = extract_int_flag "--sample-sets" args in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let args =
    List.filter (fun a -> a <> "--quick" && a <> "--full" && a <> "--json") args
  in
  match args with
  | "policy-sweep" :: _ -> policy_sweep ~quick ~json ()
  | "serve-sweep" :: _ -> serve_sweep ~quick ~json ~jobs ()
  | "scale-sweep" :: rest ->
      (* Positional integers select the sweep scales (default: 16 64
         quick, 64 256 full). *)
      let scales =
        match List.filter_map int_of_string_opt rest with
        | [] -> None
        | ss -> Some ss
      in
      scale_sweep ~quick ~json ~scales
        ~sample_sets:(Option.value sample_sets ~default:16)
        ()
  | _ when json -> json_sweep ?jobs ?scale ~quick args
  | [ "micro" ] -> micro ?scale ()
  | [] ->
      Printf.printf
        "Running all paper experiments (%s sizes; pass --quick for the \
         quarter-cost configuration, 'micro' for micro-benchmarks, \
         'scale-sweep' for the streamed/sampled-engine walls)\n"
        (if quick then "quick" else "full");
      List.iter
        (fun (name, report) ->
          Printf.printf "\n###### %s ######\n%s%!" name report)
        (Experiments.all ~quick ?scale ?jobs ())
  | names ->
      List.iter
        (fun name ->
          match Experiments.by_name name with
          | runner -> Printf.printf "%s%!" (runner ~quick ?scale ())
          | exception Not_found ->
              Printf.eprintf
                "unknown experiment %s (known: %s, micro, scale-sweep)\n" name
                (String.concat ", " Experiments.names);
              exit 1)
        names
