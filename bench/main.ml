(* Benchmark harness.

   Usage:
     bench/main.exe                  run every paper experiment (full sizes)
     bench/main.exe --quick          quarter-cost configuration
     bench/main.exe fig13 fig15      run selected experiments
     bench/main.exe micro            run the Bechamel micro-benchmarks
     bench/main.exe --json [M...]    machine-readable trajectories: one JSON
                                     object per scheme x machine (JSONL),
                                     machines default to the three
                                     commercial ones
     bench/main.exe --jobs N ...     domains for the sweep / experiment
                                     drivers (default: $CTAM_JOBS or
                                     Domain.recommended_domain_count)

   One runner per table/figure of the paper regenerates the
   corresponding rows/series (see DESIGN.md's per-experiment index and
   EXPERIMENTS.md for measured-vs-paper numbers).  The JSON mode is
   what run_bench_incremental.sh snapshots, so bench trajectories diff
   cleanly across PRs; the simulated statistics are byte-identical at
   any --jobs (only the harness telemetry fields appended per row —
   wall_seconds, major_words, pool_utilization — vary run to run). *)

open Ctam_exp

(* --- Bechamel micro-benchmarks of the core algorithms --------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let machine = Ctam_arch.Machines.dunnington ~scale:16 () in
  let prog = Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.galgel in
  let nest = List.hd (Ctam_ir.Program.parallel_nests prog) in
  let params = Ctam_core.Mapping.default_params in
  let bm, layout =
    Ctam_blocks.Block_map.for_program ~block_size:2048 ~line:64 prog
  in
  let grouping = Ctam_blocks.Tags.group nest bm in
  let groups = grouping.Ctam_blocks.Tags.groups in
  let dg = Ctam_deps.Dep_graph.create (Array.length groups) in
  let assignment = Ctam_core.Distribute.run machine groups in
  let stream = Ctam_core.Trace.serial layout nest in
  let hierarchy = Ctam_cachesim.Hierarchy.create machine in
  let tag_a = groups.(0).Ctam_blocks.Iter_group.tag in
  let tag_b = groups.(Array.length groups - 1).Ctam_blocks.Iter_group.tag in
  (* The serial stream as a phase, for the heap-vs-scan engine pair. *)
  let serial_phase =
    let p = Array.make machine.Ctam_arch.Topology.num_cores [||] in
    p.(0) <- stream;
    [ p ]
  in
  let tests =
    Test.make_grouped ~name:"ctam" ~fmt:"%s %s"
      [
        Test.make ~name:"bitset-dot (tag affinity)"
          (Staged.stage (fun () -> Ctam_blocks.Bitset.dot tag_a tag_b));
        Test.make ~name:"bitset-iter (word-skipping walk)"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               Ctam_blocks.Bitset.iter (fun j -> acc := !acc + j) tag_a;
               !acc));
        Test.make ~name:"tagging (Tags.group, small galgel)"
          (Staged.stage (fun () -> Ctam_blocks.Tags.group nest bm));
        Test.make ~name:"distribute (Figure 6)"
          (Staged.stage (fun () -> Ctam_core.Distribute.run machine groups));
        Test.make ~name:"schedule (Figure 7)"
          (Staged.stage (fun () ->
               Ctam_core.Schedule.run machine assignment dg));
        Test.make ~name:"simulate (serial stream)"
          (Staged.stage (fun () ->
               Ctam_cachesim.Engine.run_serial hierarchy stream));
        Test.make ~name:"simulate (serial stream, scan engine)"
          (Staged.stage (fun () ->
               Ctam_cachesim.Engine.run_reference hierarchy serial_phase));
        Test.make ~name:"parallel-map (8 tasks, 2 domains)"
          (Staged.stage (fun () ->
               Ctam_util.Parallel.map ~domains:2
                 (fun x -> x * x)
                 [ 1; 2; 3; 4; 5; 6; 7; 8 ]));
        Test.make ~name:"compile TopologyAware end-to-end"
          (Staged.stage (fun () ->
               Ctam_core.Mapping.compile ~params Ctam_core.Mapping.Topology_aware
                 ~machine prog));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  print_endline "\nMicro-benchmarks (monotonic clock, ns per run)";
  print_endline "----------------------------------------------";
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some (t :: _) -> Printf.printf "%-45s %12.0f ns\n" name t
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        tbl)
    results

(* --- machine-readable sweep ------------------------------------------ *)

let json_sweep ?jobs ~quick machines =
  let machines =
    match machines with
    | [] -> [ "harpertown"; "nehalem"; "dunnington" ]
    | ms -> ms
  in
  List.iter
    (fun name ->
      match Ctam_arch.Machines.by_name ~scale:16 name with
      | machine ->
          (* Harness telemetry is appended here, per machine, so the
             library sweep itself stays byte-deterministic at any
             --jobs (asserted by test_exp). *)
          let gc0 = Gc.quick_stat () in
          let busy0, cap0 = Ctam_telemetry.Runtime.pool_totals () in
          let t0 = Unix.gettimeofday () in
          let objs = Run_report.bench_sweep ?jobs ~quick ~machine () in
          let wall = Unix.gettimeofday () -. t0 in
          let gc1 = Gc.quick_stat () in
          let busy1, cap1 = Ctam_telemetry.Runtime.pool_totals () in
          let module J = Ctam_util.Json in
          let harness =
            [
              ("wall_seconds", J.Float wall);
              ("major_words", J.Float (gc1.Gc.major_words -. gc0.Gc.major_words));
              ( "pool_utilization",
                if cap1 -. cap0 > 0. then
                  J.Float ((busy1 -. busy0) /. (cap1 -. cap0))
                else J.Null );
            ]
          in
          List.iter
            (fun obj ->
              let obj =
                match obj with
                | J.Obj members -> J.Obj (members @ harness)
                | other -> other
              in
              print_endline (J.to_string ~minify:true obj))
            objs
      | exception Not_found ->
          Printf.eprintf "unknown machine %s\n" name;
          exit 1)
    machines

(* --- experiment driver ---------------------------------------------- *)

(* Extract "--jobs N" / "--jobs=N" from the argument list. *)
let rec extract_jobs acc = function
  | [] -> (None, List.rev acc)
  | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
      | _ ->
          Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
          exit 1)
  | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" -> (
      let n = String.sub arg 7 (String.length arg - 7) in
      match int_of_string_opt n with
      | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
      | _ ->
          Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
          exit 1)
  | [ "--jobs" ] ->
      Printf.eprintf "--jobs expects a positive integer\n";
      exit 1
  | arg :: rest -> extract_jobs (arg :: acc) rest

let () =
  Ctam_telemetry.Runtime.install ();
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs, args = extract_jobs [] args in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let args =
    List.filter (fun a -> a <> "--quick" && a <> "--full" && a <> "--json") args
  in
  if json then json_sweep ?jobs ~quick args
  else
  match args with
  | [ "micro" ] -> micro ()
  | [] ->
      Printf.printf
        "Running all paper experiments (%s sizes; pass --quick for the \
         quarter-cost configuration, 'micro' for micro-benchmarks)\n"
        (if quick then "quick" else "full");
      List.iter
        (fun (name, report) ->
          Printf.printf "\n###### %s ######\n%s%!" name report)
        (Experiments.all ~quick ?jobs ())
  | names ->
      List.iter
        (fun name ->
          match Experiments.by_name name with
          | runner -> Printf.printf "%s%!" (runner ~quick ())
          | exception Not_found ->
              Printf.eprintf
                "unknown experiment %s (known: %s, micro)\n" name
                (String.concat ", " Experiments.names);
              exit 1)
        names
