(* Benchmark harness.

   Usage:
     bench/main.exe                  run every paper experiment (full sizes)
     bench/main.exe --quick          quarter-cost configuration
     bench/main.exe fig13 fig15      run selected experiments
     bench/main.exe micro            run the Bechamel micro-benchmarks
     bench/main.exe scale-sweep      wall-clock of exact / streamed /
                                     set-sampled simulation across problem
                                     scales (--json for JSONL rows)
     bench/main.exe --json [M...]    machine-readable trajectories: one JSON
                                     object per scheme x machine (JSONL),
                                     machines default to the three
                                     commercial ones
     bench/main.exe --scale N ...    override the cache-capacity divisor of
                                     the experiments / sweep machines
                                     (default: 16 full, 64 quick)
     bench/main.exe --jobs N ...     domains for the sweep / experiment
                                     drivers (default: $CTAM_JOBS or
                                     Domain.recommended_domain_count)

   One runner per table/figure of the paper regenerates the
   corresponding rows/series (see DESIGN.md's per-experiment index and
   EXPERIMENTS.md for measured-vs-paper numbers).  The JSON mode is
   what run_bench_incremental.sh snapshots, so bench trajectories diff
   cleanly across PRs; the simulated statistics are byte-identical at
   any --jobs (only the harness telemetry fields appended per row —
   wall_seconds, major_words, pool_utilization — vary run to run). *)

open Ctam_exp

(* --- Bechamel micro-benchmarks of the core algorithms --------------- *)

let micro ?(scale = 16) () =
  let open Bechamel in
  let open Toolkit in
  let machine = Ctam_arch.Machines.dunnington ~scale () in
  let prog = Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.galgel in
  let nest = List.hd (Ctam_ir.Program.parallel_nests prog) in
  let params = Ctam_core.Mapping.default_params in
  let bm, layout =
    Ctam_blocks.Block_map.for_program ~block_size:2048 ~line:64 prog
  in
  let grouping = Ctam_blocks.Tags.group nest bm in
  let groups = grouping.Ctam_blocks.Tags.groups in
  let dg = Ctam_deps.Dep_graph.create (Array.length groups) in
  let assignment = Ctam_core.Distribute.run machine groups in
  let stream = Ctam_core.Trace.serial layout nest in
  let hierarchy = Ctam_cachesim.Hierarchy.create machine in
  let tag_a = groups.(0).Ctam_blocks.Iter_group.tag in
  let tag_b = groups.(Array.length groups - 1).Ctam_blocks.Iter_group.tag in
  (* The serial stream as a phase, for the heap-vs-scan engine pair. *)
  let serial_phase =
    let p = Array.make machine.Ctam_arch.Topology.num_cores [||] in
    p.(0) <- stream;
    [ p ]
  in
  let tests =
    Test.make_grouped ~name:"ctam" ~fmt:"%s %s"
      [
        Test.make ~name:"bitset-dot (tag affinity)"
          (Staged.stage (fun () -> Ctam_blocks.Bitset.dot tag_a tag_b));
        Test.make ~name:"bitset-iter (word-skipping walk)"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               Ctam_blocks.Bitset.iter (fun j -> acc := !acc + j) tag_a;
               !acc));
        Test.make ~name:"tagging (Tags.group, small galgel)"
          (Staged.stage (fun () -> Ctam_blocks.Tags.group nest bm));
        Test.make ~name:"distribute (Figure 6)"
          (Staged.stage (fun () -> Ctam_core.Distribute.run machine groups));
        Test.make ~name:"schedule (Figure 7)"
          (Staged.stage (fun () ->
               Ctam_core.Schedule.run machine assignment dg));
        Test.make ~name:"simulate (serial stream)"
          (Staged.stage (fun () ->
               Ctam_cachesim.Engine.run_serial hierarchy stream));
        Test.make ~name:"simulate (serial stream, scan engine)"
          (Staged.stage (fun () ->
               Ctam_cachesim.Engine.run_reference hierarchy serial_phase));
        Test.make ~name:"parallel-map (8 tasks, 2 domains)"
          (Staged.stage (fun () ->
               Ctam_util.Parallel.map ~domains:2
                 (fun x -> x * x)
                 [ 1; 2; 3; 4; 5; 6; 7; 8 ]));
        Test.make ~name:"compile TopologyAware end-to-end"
          (Staged.stage (fun () ->
               Ctam_core.Mapping.compile ~params Ctam_core.Mapping.Topology_aware
                 ~machine prog));
      ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    results
  in
  let results = benchmark () in
  print_endline "\nMicro-benchmarks (monotonic clock, ns per run)";
  print_endline "----------------------------------------------";
  Hashtbl.iter
    (fun _metric tbl ->
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some (t :: _) -> Printf.printf "%-45s %12.0f ns\n" name t
          | _ -> Printf.printf "%-45s (no estimate)\n" name)
        tbl)
    results

(* --- machine-readable sweep ------------------------------------------ *)

let json_sweep ?jobs ?(scale = 16) ~quick machines =
  let machines =
    match machines with
    | [] -> [ "harpertown"; "nehalem"; "dunnington" ]
    | ms -> ms
  in
  List.iter
    (fun name ->
      match Ctam_arch.Machines.by_name ~scale name with
      | machine ->
          (* Harness telemetry is appended here, per machine, so the
             library sweep itself stays byte-deterministic at any
             --jobs (asserted by test_exp). *)
          let gc0 = Gc.quick_stat () in
          let busy0, cap0 = Ctam_telemetry.Runtime.pool_totals () in
          let t0 = Unix.gettimeofday () in
          let objs = Run_report.bench_sweep ?jobs ~quick ~machine () in
          let wall = Unix.gettimeofday () -. t0 in
          let gc1 = Gc.quick_stat () in
          let busy1, cap1 = Ctam_telemetry.Runtime.pool_totals () in
          let module J = Ctam_util.Json in
          let harness =
            [
              ("wall_seconds", J.Float wall);
              ("major_words", J.Float (gc1.Gc.major_words -. gc0.Gc.major_words));
              ( "pool_utilization",
                if cap1 -. cap0 > 0. then
                  J.Float ((busy1 -. busy0) /. (cap1 -. cap0))
                else J.Null );
            ]
          in
          List.iter
            (fun obj ->
              let obj =
                match obj with
                | J.Obj members -> J.Obj (members @ harness)
                | other -> other
              in
              print_endline (J.to_string ~minify:true obj))
            objs
      | exception Not_found ->
          Printf.eprintf "unknown machine %s\n" name;
          exit 1)
    machines

(* --- scale sweep ----------------------------------------------------- *)

(* The scale-sweep micro of PR 7: wall-clock of one full simulation per
   kernel x scheme under three engine modes — exact dense arrays,
   generator-backed streams, and streamed + set-sampled — across
   problem scales.  A sweep scale S means "S/16 x today's default
   problem": the machine runs at capacity divisor max(1, 256/S) (so
   S=256 is the paper's full-size Dunnington) and each kernel's linear
   size grows by sqrt(S/16) (quadratic iteration spaces then scale
   their access volume by ~S/16).  Streamed stats are asserted
   bit-identical to exact; sampled stats report their relative cycle
   error.  Timings are taken serially (no domains) so the walls mean
   something. *)

let isqrt n =
  let r = int_of_float (sqrt (float_of_int n) +. 0.5) in
  if r * r > n then r - 1 else r

(* Largest power of two <= [requested] dividing every cache's set
   count — the largest legal sampling factor for the machine. *)
let sample_factor_for machine requested =
  List.fold_left
    (fun acc (c : Ctam_arch.Topology.cache_params) ->
      let sets =
        c.Ctam_arch.Topology.size_bytes
        / (c.Ctam_arch.Topology.assoc * c.Ctam_arch.Topology.line)
      in
      let rec fit f = if f <= 1 || sets mod f = 0 then max 1 f else fit (f / 2) in
      min acc (fit requested))
    requested
    (Ctam_arch.Topology.caches machine)

let scale_sweep ~quick ~json ~scales ~sample_sets () =
  let module J = Ctam_util.Json in
  let module Mapping = Ctam_core.Mapping in
  let module Stats = Ctam_cachesim.Stats in
  let open Ctam_workloads in
  let scales =
    match scales with
    | Some ss -> ss
    | None -> if quick then [ 16; 64 ] else [ 64; 256 ]
  in
  let kernels =
    if quick then [ Suite.galgel; Suite.equake; Suite.cg; Suite.sp ]
    else Suite.all
  in
  let schemes = [ Mapping.Base; Mapping.Combined ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  if not json then
    print_endline
      "Scale sweep: simulation wall-clock, exact vs streamed vs set-sampled \
       (Dunnington)";
  List.iter
    (fun s ->
      let machine = Ctam_arch.Machines.dunnington ~scale:(max 1 (256 / s)) () in
      let factor = sample_factor_for machine sample_sets in
      let mult = max 1 (isqrt (max 1 (s / 16))) in
      let rows = ref [] in
      List.iter
        (fun k ->
          let prog =
            Kernel.program ~size:(k.Kernel.default_size * mult) k
          in
          List.iter
            (fun scheme ->
              let dense_c, t_compile =
                time (fun () -> Mapping.compile scheme ~machine prog)
              in
              let stream_c, t_compile_stream =
                time (fun () ->
                    Mapping.compile ~stream:true scheme ~machine prog)
              in
              let exact, t_exact =
                time (fun () -> Mapping.simulate dense_c)
              in
              let streamed, t_stream =
                time (fun () -> Mapping.simulate stream_c)
              in
              if streamed <> exact then begin
                Printf.eprintf
                  "scale-sweep: streamed stats diverge from exact (%s %s \
                   scale %d)\n"
                  k.Kernel.name
                  (Mapping.scheme_name scheme)
                  s;
                exit 1
              end;
              let sampled, t_sample =
                time (fun () ->
                    Mapping.simulate ~sample_sets:factor stream_c)
              in
              let err =
                List.assoc "cycles"
                  (Stats.rel_errors ~exact ~approx:sampled)
              in
              let speedup = t_exact /. Float.max 1e-9 t_sample in
              if json then
                print_endline
                  (J.to_string ~minify:true
                     (J.Obj
                        [
                          ("experiment", J.String "scale_sweep");
                          ("machine", J.String machine.Ctam_arch.Topology.name);
                          ("scale", J.Int s);
                          ("kernel", J.String k.Kernel.name);
                          ("scheme", J.String (Mapping.scheme_name scheme));
                          ("accesses", J.Int exact.Stats.total_accesses);
                          ("sample_sets", J.Int factor);
                          ("cycles_exact", J.Int exact.Stats.cycles);
                          ("cycles_sampled", J.Int sampled.Stats.cycles);
                          ("rel_err_cycles", J.Float err);
                          ("compile_seconds", J.Float t_compile);
                          ( "compile_stream_seconds",
                            J.Float t_compile_stream );
                          ("sim_exact_seconds", J.Float t_exact);
                          ("sim_stream_seconds", J.Float t_stream);
                          ("sim_sampled_seconds", J.Float t_sample);
                          ("sim_speedup", J.Float speedup);
                        ]))
              else
                rows :=
                  [
                    k.Kernel.name;
                    Mapping.scheme_name scheme;
                    string_of_int exact.Stats.total_accesses;
                    Printf.sprintf "%.3f" t_compile;
                    Printf.sprintf "%.3f" t_exact;
                    Printf.sprintf "%.3f" t_stream;
                    Printf.sprintf "%.3f" t_sample;
                    Printf.sprintf "%.1fx" speedup;
                    Printf.sprintf "%.2f%%" (100. *. err);
                  ]
                  :: !rows)
            schemes)
        kernels;
      if not json then
        Printf.printf "\n## scale %d (machine /%d, size x%d, sample 1/%d)\n%s"
          s
          (max 1 (256 / s))
          mult factor
          (Report.table
             ~header:
               [
                 "kernel";
                 "scheme";
                 "accesses";
                 "compile_s";
                 "exact_s";
                 "stream_s";
                 "sampled_s";
                 "sim speedup";
                 "cycle err";
               ]
             (List.rev !rows)))
    scales

(* --- serve sweep ----------------------------------------------------- *)

(* Throughput and latency tail of the mapping daemon, cold vs warm: an
   in-process server on a temp socket, loaded by the library's own
   load generator.  The cold phase sends [nocache] requests (every
   answer runs the full compile + simulate pipeline); the warm phase
   repeats one cacheable request after priming, so it measures the
   plan-cache fast path (memory-LRU hit + one frame round trip).  The
   warm/cold throughput ratio is the headline number: it is what a
   mapping service buys over forking one-shot processes.

   The daemon runs with its audit journal on and the slowlog threshold
   at zero, and each phase row carries the delta of journal records
   written and slowlog entries noted during that phase — so a bench
   run also exercises (and prices) the observability path. *)
let serve_sweep ~quick ~json ~jobs () =
  let module J = Ctam_util.Json in
  let module Server = Ctam_serve.Server in
  let module Client = Ctam_serve.Client in
  let workers = Option.value jobs ~default:4 in
  let concurrency = workers in
  let program, machine_name, scale = ("cg", "harpertown", 64) in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ctam-serve-sweep-%d.sock" (Unix.getpid ()))
  in
  let journal =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ctam-serve-sweep-%d.jsonl" (Unix.getpid ()))
  in
  let request nocache =
    J.Obj
      [
        ("op", J.String "run");
        ("program", J.String program);
        ("machine", J.String machine_name);
        ("scale", J.Int scale);
        ("scheme", J.String "combined");
        ("nocache", J.Bool nocache);
      ]
  in
  let server =
    Server.create
      {
        Server.default_config with
        Server.socket;
        workers;
        journal_path = Some journal;
        slow_ms = 0.;
      }
  in
  let daemon = Domain.spawn (fun () -> Server.serve server) in
  (* Journal records written / slowlog entries noted so far, read over
     the wire so the bench sees exactly what an operator would. *)
  let obs_counters () =
    match Client.one_shot ~socket (J.Obj [ ("op", J.String "stats") ]) with
    | Ok reply ->
        let int_at path =
          let j =
            List.fold_left
              (fun j name -> Option.bind j (J.member name))
              (J.member "result" reply) path
          in
          match j with Some (J.Int n) -> n | _ -> 0
        in
        (int_at [ "journal"; "records" ], int_at [ "slowlog"; "recorded" ])
    | Error _ -> (0, 0)
  in
  let cold, warm, (cold_jr, cold_sl), (warm_jr, warm_sl) =
    Fun.protect
      ~finally:(fun () ->
        ignore (Client.one_shot ~socket (J.Obj [ ("op", J.String "shutdown") ]));
        Domain.join daemon;
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ journal; journal ^ ".1" ])
      (fun () ->
        let cold_n, warm_n = if quick then (8, 160) else (16, 400) in
        let jr0, sl0 = obs_counters () in
        let cold =
          Client.load ~socket ~concurrency ~total:cold_n [ request true ]
        in
        let jr1, sl1 = obs_counters () in
        (* Prime the cache once so the warm phase never pays a miss. *)
        ignore (Client.one_shot ~socket (request false));
        let jr2, sl2 = obs_counters () in
        let warm =
          Client.load ~socket ~concurrency ~total:warm_n [ request false ]
        in
        let jr3, sl3 = obs_counters () in
        (cold, warm, (jr1 - jr0, sl1 - sl0), (jr3 - jr2, sl3 - sl2)))
  in
  let speedup = warm.Client.rps /. Float.max 1e-9 cold.Client.rps in
  if json then begin
    let row phase (s : Client.load_stats) (jr, sl) =
      print_endline
        (J.to_string ~minify:true
           (J.Obj
              [
                ("experiment", J.String "serve_sweep");
                ("phase", J.String phase);
                ("program", J.String program);
                ("machine", J.String machine_name);
                ("scale", J.Int scale);
                ("workers", J.Int workers);
                ("concurrency", J.Int concurrency);
                ("requests", J.Int s.Client.requests);
                ("ok", J.Int s.Client.ok);
                ("cached", J.Int s.Client.cached);
                ("errors", J.Int s.Client.errors);
                ("rps", J.Float s.Client.rps);
                ("mean_ms", J.Float s.Client.mean_ms);
                ("p50_ms", J.Float s.Client.p50_ms);
                ("p90_ms", J.Float s.Client.p90_ms);
                ("p99_ms", J.Float s.Client.p99_ms);
                ("journal_records", J.Int jr);
                ("slowlog_recorded", J.Int sl);
                ("warm_over_cold", if phase = "warm" then J.Float speedup else J.Null);
              ]))
    in
    row "cold" cold (cold_jr, cold_sl);
    row "warm" warm (warm_jr, warm_sl)
  end
  else begin
    let row phase (s : Client.load_stats) (jr, sl) =
      [
        phase;
        string_of_int s.Client.requests;
        string_of_int s.Client.cached;
        string_of_int s.Client.errors;
        Printf.sprintf "%.1f" s.Client.rps;
        Printf.sprintf "%.2f" s.Client.p50_ms;
        Printf.sprintf "%.2f" s.Client.p90_ms;
        Printf.sprintf "%.2f" s.Client.p99_ms;
        string_of_int jr;
        string_of_int sl;
      ]
    in
    Printf.printf
      "Serve sweep: %s on %s /%d, %d workers, %d connections\n%s\n\
       warm/cold throughput: %.1fx\n"
      program machine_name scale workers concurrency
      (Report.table
         ~header:
           [ "phase"; "requests"; "cached"; "errors"; "req/s"; "p50_ms";
             "p90_ms"; "p99_ms"; "journal"; "slowlog" ]
         [ row "cold" cold (cold_jr, cold_sl); row "warm" warm (warm_jr, warm_sl) ])
      speedup
  end

(* --- experiment driver ---------------------------------------------- *)

(* Extract "--FLAG N" / "--FLAG=N" (an integer option) from the
   argument list. *)
let extract_int_flag flag args =
  let prefix = flag ^ "=" in
  let plen = String.length prefix in
  let bad got =
    Printf.eprintf "%s expects a positive integer%s\n" flag got;
    exit 1
  in
  let rec go acc = function
    | [] -> (None, List.rev acc)
    | f :: n :: rest when f = flag -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | _ -> bad (", got " ^ n))
    | [ f ] when f = flag -> bad ""
    | arg :: rest when String.length arg > plen && String.sub arg 0 plen = prefix
      -> (
        let n = String.sub arg plen (String.length arg - plen) in
        match int_of_string_opt n with
        | Some j when j >= 1 -> (Some j, List.rev_append acc rest)
        | _ -> bad (", got " ^ n))
    | arg :: rest -> go (arg :: acc) rest
  in
  go [] args

let extract_jobs args = extract_int_flag "--jobs" args

let () =
  Ctam_telemetry.Runtime.install ();
  let args = List.tl (Array.to_list Sys.argv) in
  let jobs, args = extract_jobs args in
  let scale, args = extract_int_flag "--scale" args in
  let sample_sets, args = extract_int_flag "--sample-sets" args in
  let quick = List.mem "--quick" args in
  let json = List.mem "--json" args in
  let args =
    List.filter (fun a -> a <> "--quick" && a <> "--full" && a <> "--json") args
  in
  match args with
  | "serve-sweep" :: _ -> serve_sweep ~quick ~json ~jobs ()
  | "scale-sweep" :: rest ->
      (* Positional integers select the sweep scales (default: 16 64
         quick, 64 256 full). *)
      let scales =
        match List.filter_map int_of_string_opt rest with
        | [] -> None
        | ss -> Some ss
      in
      scale_sweep ~quick ~json ~scales
        ~sample_sets:(Option.value sample_sets ~default:16)
        ()
  | _ when json -> json_sweep ?jobs ?scale ~quick args
  | [ "micro" ] -> micro ?scale ()
  | [] ->
      Printf.printf
        "Running all paper experiments (%s sizes; pass --quick for the \
         quarter-cost configuration, 'micro' for micro-benchmarks, \
         'scale-sweep' for the streamed/sampled-engine walls)\n"
        (if quick then "quick" else "full");
      List.iter
        (fun (name, report) ->
          Printf.printf "\n###### %s ######\n%s%!" name report)
        (Experiments.all ~quick ?scale ?jobs ())
  | names ->
      List.iter
        (fun name ->
          match Experiments.by_name name with
          | runner -> Printf.printf "%s%!" (runner ~quick ?scale ())
          | exception Not_found ->
              Printf.eprintf
                "unknown experiment %s (known: %s, micro, scale-sweep)\n" name
                (String.concat ", " Experiments.names);
              exit 1)
        names
