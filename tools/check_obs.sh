#!/bin/sh
# Observability gate for the mapping daemon: drives a serially-issued
# mixed burst (computes, cache hits, structured errors, introspection
# ops) through `ctamap serve --journal`, then asserts the whole
# observability story end to end:
#
#   - the audit journal is valid JSONL with the versioned record
#     schema and strictly monotone request ids (journal_replay check);
#   - re-issuing the journal against the live daemon answers
#     byte-identically modulo the volatile members (journal_replay
#     replay);
#   - the `metrics` wire op renders a Prometheus exposition that
#     parses with no duplicate series (metrics_check --prom);
#   - the `slowlog` op returns the burst's requests (threshold 0);
#   - a traced run embeds Chrome trace-event JSON in the reply;
#   - `ctamap top --count 1` renders a snapshot over the wire;
#   - with --log-format json the daemon's stderr is JSON lines and the
#     startup line carries the effective config.
#
# Wired into `dune runtest` from tools/dune; also runnable by hand:
#
#   dune build && sh tools/check_obs.sh
#
# Args (all optional): CTAMAP_EXE JOURNAL_REPLAY_EXE METRICS_CHECK_EXE
set -e
CTAMAP=${1:-./_build/default/bin/ctamap.exe}
REPLAY=${2:-./_build/default/tools/journal_replay.exe}
METRICS_CHECK=${3:-./_build/default/tools/metrics_check.exe}
tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2> /dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

sock="$tmp/daemon.sock"
journal="$tmp/journal.jsonl"
run_args="cg -m harpertown --scale 64"

"$CTAMAP" serve --socket "$sock" --workers 2 --cache-dir "$tmp/cache" \
  --journal "$journal" --slow-ms 0 --log-format json \
  2> "$tmp/serve.log" &
pid=$!
i=0
while [ ! -S "$sock" ]; do
  i=$((i + 1))
  [ "$i" -gt 100 ] && { echo "check_obs: daemon never bound $sock" >&2
                        cat "$tmp/serve.log" >&2; exit 1; }
  sleep 0.1
done

client() { "$CTAMAP" client --socket "$sock" "$@"; }

# --- the mixed burst (serial, so journal append order is id order) ----
client --op ping > /dev/null
client --op run $run_args > /dev/null           # compute (cache miss)
client --op run $run_args > /dev/null           # plan-cache hit
client --op map $run_args > /dev/null
client --op check $run_args > /dev/null
if client --op run no-such-kernel -m harpertown > /dev/null 2>&1; then
  echo "check_obs: bad request unexpectedly succeeded" >&2; exit 1
fi
client --op run $run_args --trace > "$tmp/traced.json"
grep -q '"traceEvents"' "$tmp/traced.json" || {
  echo "check_obs: traced run carries no trace member" >&2; exit 1
}
client --op stats > "$tmp/stats.json"
grep -q '"journal"' "$tmp/stats.json" || {
  echo "check_obs: stats carry no journal member" >&2; exit 1
}
grep -q '"uptime_seconds"' "$tmp/stats.json" || {
  echo "check_obs: stats carry no uptime" >&2; exit 1
}

# --- slowlog: threshold 0 records the whole burst ---------------------
client --op slowlog > "$tmp/slowlog.json"
grep -q '"request_id"' "$tmp/slowlog.json" || {
  echo "check_obs: slowlog returned no entries at threshold 0" >&2; exit 1
}

# --- metrics op: valid Prometheus, no duplicate series ----------------
client --op metrics --format prometheus > "$tmp/metrics.prom"
"$METRICS_CHECK" --prom "$tmp/metrics.prom" > /dev/null
grep -q '^ctam_serve_request_seconds_bucket' "$tmp/metrics.prom" || {
  echo "check_obs: no request-latency histogram in the exposition" >&2
  exit 1
}
grep -q '^ctam_serve_span_seconds_bucket' "$tmp/metrics.prom" || {
  echo "check_obs: no span histogram in the exposition" >&2; exit 1
}
grep -q '^ctam_serve_journal_records_total' "$tmp/metrics.prom" || {
  echo "check_obs: no journal counters in the exposition" >&2; exit 1
}
# The JSON form must also satisfy the snapshot schema.
client --op metrics > "$tmp/metrics.json"
"$METRICS_CHECK" "$tmp/metrics.json" > /dev/null

# --- journal: schema, monotone ids, clean self-replay -----------------
"$REPLAY" check "$journal" --monotone > /dev/null
"$REPLAY" replay "$journal" "$sock" > /dev/null

# --- the monitor renders a snapshot over the wire ---------------------
"$CTAMAP" top --socket "$sock" --count 1 > "$tmp/top.out"
grep -q 'plan cache:' "$tmp/top.out" || {
  echo "check_obs: top rendered no cache line" >&2; exit 1
}
grep -q 'run' "$tmp/top.out" || {
  echo "check_obs: top rendered no per-op row" >&2; exit 1
}

"$CTAMAP" client --socket "$sock" --op shutdown > /dev/null
wait "$pid" || { echo "check_obs: daemon exited non-zero" >&2; exit 1; }
pid=""

# --- daemon stderr: JSON lines, startup config at info ----------------
grep -q '"msg":"mapping daemon listening"' "$tmp/serve.log" || {
  echo "check_obs: no JSON startup line in the daemon log" >&2
  cat "$tmp/serve.log" >&2
  exit 1
}
grep '"mapping daemon listening"' "$tmp/serve.log" | grep -q '"workers"' || {
  echo "check_obs: startup line carries no effective config" >&2; exit 1
}

echo "check_obs: ok"
