#!/bin/sh
# End-to-end check of the telemetry exposure paths: a profiled run with
# --metrics-out must produce (a) a schema-valid JSON snapshot whose
# engine, mapping-phase and GC series are nonzero, (b) with -j 4, live
# parallel-pool series too, (c) a parseable, duplicate-free Prometheus
# exposition via the .prom suffix, and (d) a run-report telemetry
# member that `ctamap report diff` compares (and gates) across runs.
# CTAM_TELEMETRY=0 must suppress the series without breaking the run.
# Wired into `dune runtest` from tools/dune; also runnable by hand:
#
#   dune build && sh tools/check_metrics.sh
#
# Args (all optional): CTAMAP_EXE METRICS_CHECK_EXE
set -e
CTAMAP=${1:-./_build/default/bin/ctamap.exe}
CHECK=${2:-./_build/default/tools/metrics_check.exe}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_args="sp -m harpertown --scale 64 -s topology"

# Serial profiled run: engine, per-phase and GC series must be live.
"$CTAMAP" run $run_args --profile --json "$tmp/report1.json" \
  --metrics-out "$tmp/m1.json" > /dev/null
"$CHECK" \
  --require ctam_engine_runs_total \
  --require ctam_engine_accesses_total \
  --require ctam_engine_run_seconds \
  --require ctam_phase_seconds \
  --require ctam_phase_minor_words_total \
  "$tmp/m1.json"

# Parallel compare: the pool monitor must have recorded tasks too.
"$CTAMAP" compare sp -m harpertown --scale 64 -j 4 \
  --metrics-out "$tmp/m2.json" > /dev/null
"$CHECK" \
  --require ctam_engine_runs_total \
  --require ctam_parallel_maps_total \
  --require ctam_parallel_tasks_total \
  "$tmp/m2.json"

# Memoized tune sweep: candidate mappings share their serial phases,
# so the engine phase memo must record hits and replayed accesses —
# an unobserved sweep is where memo wins materialize (profiled runs
# attach probes and leave the memo inert).
"$CTAMAP" tune cg -m dunnington --scale 64 --budget 4 --memo \
  --metrics-out "$tmp/m3.json" > /dev/null
"$CHECK" \
  --require ctam_memo_hits_total \
  --require ctam_memo_stores_total \
  --require ctam_memo_replayed_accesses_total \
  "$tmp/m3.json"

# Set-sampled streamed run: the sampling families must be live.
"$CTAMAP" run sp -m harpertown --scale 16 --stream --sample-sets 2 \
  --metrics-out "$tmp/m4.json" > /dev/null
"$CHECK" \
  --require ctam_engine_sampled_runs_total \
  --require ctam_engine_sampled_accesses_total \
  --require ctam_engine_skipped_accesses_total \
  "$tmp/m4.json"

# Prometheus text exposition rides the .prom suffix.
"$CTAMAP" run $run_args --metrics-out "$tmp/m.prom" > /dev/null
"$CHECK" --prom "$tmp/m.prom"
grep -q '^ctam_engine_runs_total' "$tmp/m.prom" || {
  echo "check_metrics: engine counter missing from Prometheus output" >&2
  exit 1
}

# The run report carries the versioned telemetry member, and report
# diff accepts two such reports (self-diff: no regressions).
grep -q '"telemetry_version"' "$tmp/report1.json" || {
  echo "check_metrics: run report has no telemetry member" >&2
  exit 1
}
"$CTAMAP" report diff "$tmp/report1.json" "$tmp/report1.json" > /dev/null || {
  echo "check_metrics: report self-diff flagged a regression" >&2
  exit 1
}

# Kill switch: disabled telemetry still runs and still writes a valid
# snapshot — just with no live engine series.
CTAM_TELEMETRY=0 "$CTAMAP" run $run_args --metrics-out "$tmp/m0.json" \
  > /dev/null
"$CHECK" "$tmp/m0.json"
if "$CHECK" --require ctam_engine_runs_total "$tmp/m0.json" > /dev/null 2>&1
then
  echo "check_metrics: CTAM_TELEMETRY=0 still recorded engine runs" >&2
  exit 1
fi

echo "check_metrics: ok"
