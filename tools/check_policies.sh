#!/bin/sh
# End-to-end gate for the replacement-policy layer and the trace
# frontend:
#   1. the bench policy-sweep's differential invariants hold (the
#      sweep itself exits non-zero when LRU-as-policy diverges from
#      the seed reference engine or any hit-rate trend breaks);
#   2. `ctamap simtrace` replays a Lackey-style trace, honors
#      per-level --policy bindings, and emits a ctam-simtrace-v1
#      report that parses as JSON (tools/json_check.exe);
#   3. malformed trace lines are rejected WITH their line position in
#      strict mode, and merely counted in --lossy mode;
#   4. a bogus --policy spec is rejected before any work happens.
# Wired into `dune runtest` from tools/dune; also runnable by hand:
#
#   dune build && sh tools/check_policies.sh
#
# Args (all optional): CTAMAP_EXE BENCH_EXE JSON_CHECK_EXE
set -e
CTAMAP=${1:-./_build/default/bin/ctamap.exe}
BENCH=${2:-./_build/default/bench/main.exe}
JSON_CHECK=${3:-./_build/default/tools/json_check.exe}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# 1. The differential sweep (quick subset: one machine, 64K-access
#    reference strings).  Exits non-zero on any invariant violation.
"$BENCH" policy-sweep --quick > /dev/null

# 2. A well-formed mixed-notation trace through simtrace, with
#    per-level policy bindings; the JSON report must parse and carry
#    the schema, the bound policies, and zero malformed lines.
cat > "$tmp/good.trace" << 'EOF'
==1234== lackey trace
I  0x40001000,4
 L 0x1000,8
 S 0x1040,8
 M 0x1080,4
R 0x20
W 0x1100
1: L 0x2000,8 @5
EOF
"$CTAMAP" simtrace "$tmp/good.trace" -m dunnington --cores 2 \
  --interleave tagged --policy L1=plru,L2=qlru --json > "$tmp/report.json"
"$JSON_CHECK" "$tmp/report.json" > /dev/null
grep -q '"schema": "ctam-simtrace-v1"' "$tmp/report.json"
grep -q '"policy": "plru"' "$tmp/report.json"
grep -q '"policy": "qlru"' "$tmp/report.json"
grep -q '"malformed": 0' "$tmp/report.json"

# 3a. Strict mode: a malformed line fails the run and names its
#     position.
cat > "$tmp/bad.trace" << 'EOF'
 L 0x1000,8
 S 0x1040,8
 X 0xnonsense
 L 0x1080,4
EOF
if "$CTAMAP" simtrace "$tmp/bad.trace" -m dunnington > /dev/null \
  2> "$tmp/err"; then
  echo "check_policies: strict mode accepted a malformed line" >&2
  exit 1
fi
grep -q "line 3" "$tmp/err" || {
  echo "check_policies: strict error lost the line position:" >&2
  cat "$tmp/err" >&2
  exit 1
}

# 3b. Lossy mode: the same trace runs, the malformed line is counted,
#     the well-formed records survive.
"$CTAMAP" simtrace "$tmp/bad.trace" -m dunnington --lossy --json \
  > "$tmp/lossy.json"
"$JSON_CHECK" "$tmp/lossy.json" > /dev/null
grep -q '"malformed": 1' "$tmp/lossy.json"
grep -q '"records": 3' "$tmp/lossy.json"

# 4. Policy spec validation happens before the trace is touched.
if "$CTAMAP" simtrace "$tmp/good.trace" -m dunnington --policy bogus \
  > /dev/null 2>&1; then
  echo "check_policies: bogus --policy accepted" >&2
  exit 1
fi
if "$CTAMAP" run cg -m dunnington --policy L9=plru > /dev/null 2>&1; then
  echo "check_policies: out-of-range policy level accepted" >&2
  exit 1
fi

echo "check_policies: sweep invariants hold, simtrace gates work"
