(* serve_probe: hostile-input harness and report comparator for the
   mapping daemon (tools/check_serve.sh drives it).

   [serve_probe abuse SOCKET] speaks the wire protocol by hand — raw
   bytes, not the client library — and throws every class of bad
   input at a running daemon: a length prefix that is plain garbage
   (an HTTP request), an oversized-but-honest frame, unparseable
   JSON, valid JSON that is not a request, and a mid-frame
   disconnect.  After each it asserts the structured error reply the
   protocol promises and, where the connection survives by contract,
   that a ping on the same connection still answers.  Exit 0 means
   the daemon never died and never replied out of frame.

   [serve_probe compare A B] checks two JSON documents are equal
   modulo the volatile report members ("timings_seconds",
   "telemetry" — wall clocks and process state), i.e. that a served
   answer is the one-shot answer. *)

module J = Ctam_util.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve_probe: " ^ s);
      exit 1)
    fmt

(* --- raw wire helpers ------------------------------------------------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (* A hung daemon must fail the probe, not hang it. *)
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
  fd

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

exception Eof

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Bytes.to_string b
    else
      match Unix.read fd b off (n - off) with 0 -> raise Eof | k -> go (off + k)
  in
  go 0

let frame payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set hdr 3 (Char.chr (n land 0xFF));
  Bytes.to_string hdr ^ payload

let send_frame fd payload = write_all fd (frame payload)

let recv_frame fd =
  let hdr = read_exact fd 4 in
  let b i = Char.code hdr.[i] in
  let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  if n > 1 lsl 26 then fail "reply frame claims %d bytes" n;
  read_exact fd n

let recv_json fd =
  match J.parse (recv_frame fd) with
  | Ok j -> j
  | Error e -> fail "reply is not JSON: %s" e

let member name j = match j with J.Obj _ -> J.member name j | _ -> None

let expect_error what fd code =
  let j = recv_json fd in
  (match member "ok" j with
  | Some (J.Bool false) -> ()
  | _ -> fail "%s: expected ok=false reply, got %s" what (J.to_string ~minify:true j));
  match member "error" j with
  | Some e -> (
      match member "code" e with
      | Some (J.String c) when c = code -> ()
      | Some (J.String c) -> fail "%s: expected error code %s, got %s" what code c
      | _ -> fail "%s: error reply carries no code" what)
  | None -> fail "%s: ok=false reply carries no error member" what

(* A well-formed pong, returning the daemon-minted request id so
   callers can assert ordering. *)
let expect_pong what fd =
  let j = recv_json fd in
  (match (member "ok" j, Option.map (member "pong") (member "result" j)) with
  | Some (J.Bool true), Some (Some (J.Bool true)) -> ()
  | _ -> fail "%s: expected a pong, got %s" what (J.to_string ~minify:true j));
  match member "request_id" j with
  | Some (J.Int rid) -> rid
  | _ -> fail "%s: reply carries no request_id" what

let ping what fd =
  send_frame fd {|{"op":"ping"}|};
  ignore (expect_pong what fd)

let expect_eof what fd =
  match recv_frame fd with
  | exception Eof -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  | s -> fail "%s: expected the connection closed, got a %d-byte frame" what
           (String.length s)

(* --- abuse mode ------------------------------------------------------- *)

let abuse socket =
  (* 1. A client that never spoke the protocol: the first four bytes
     of an HTTP request decode to a ~1.2 GB length, past any drain
     ceiling.  The daemon must reply with a structured error and then
     close this connection — it cannot resynchronize. *)
  let fd = connect socket in
  write_all fd "GET / HTTP/1.0\r\n\r\n";
  expect_error "garbage prefix" fd "oversized_frame";
  expect_eof "garbage prefix" fd;
  Unix.close fd;

  (* 2. An honest frame over the size limit (20 MiB > the 16 MiB
     default).  The daemon drains it to stay in sync: same structured
     error, but the connection keeps working. *)
  let fd = connect socket in
  let mb = String.make (1024 * 1024) 'x' in
  send_frame fd (String.concat "" (List.init 20 (fun _ -> mb)));
  expect_error "oversized frame" fd "oversized_frame";
  ping "oversized frame" fd;
  Unix.close fd;

  (* 3. A frame that is not JSON. *)
  let fd = connect socket in
  send_frame fd "{this is not json";
  expect_error "malformed json" fd "malformed_json";
  ping "malformed json" fd;

  (* 4. JSON that is not a request object / names no real op —
     still on the same connection. *)
  send_frame fd "[1,2,3]";
  expect_error "non-object request" fd "bad_request";
  send_frame fd {|{"op":"frobnicate"}|};
  expect_error "unknown op" fd "bad_request";
  send_frame fd {|{"op":"run","program":"no-such-kernel","machine":"harpertown"}|};
  expect_error "unknown program" fd "bad_request";
  ping "bad requests" fd;
  Unix.close fd;

  (* 5. Mid-frame disconnect: promise 100 bytes, deliver 10, vanish.
     The daemon must shrug this connection off and keep serving. *)
  let fd = connect socket in
  write_all fd "\x00\x00\x00\x64" (* length = 100 *);
  write_all fd "truncated!";
  Unix.close fd;
  let fd = connect socket in
  ping "after mid-frame disconnect" fd;
  Unix.close fd;

  (* 6. Resync under pipelining: an oversized frame with valid frames
     already queued behind it in the same burst.  The drain must
     consume exactly the declared bytes — every pipelined request is
     answered, in order, with strictly increasing request ids. *)
  let fd = connect socket in
  write_all fd
    (String.concat ""
       (frame (String.concat "" (List.init 20 (fun _ -> mb)))
       :: List.init 3 (fun _ -> frame {|{"op":"ping"}|})));
  expect_error "pipelined resync" fd "oversized_frame";
  let rids = List.init 3 (fun _ -> expect_pong "pipelined resync" fd) in
  ignore
    (List.fold_left
       (fun prev rid ->
         (match prev with
         | Some p when rid <= p ->
             fail "pipelined resync: request id %d not above %d" rid p
         | _ -> ());
         Some rid)
       None rids);
  Unix.close fd;

  print_endline "serve_probe: abuse ok"

(* --- compare mode ----------------------------------------------------- *)

let volatile = [ "timings_seconds"; "telemetry" ]

let rec strip j =
  match j with
  | J.Obj members ->
      J.Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k volatile then None else Some (k, strip v))
           members)
  | J.List l -> J.List (List.map strip l)
  | _ -> j

let load path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match J.parse s with
  | Ok j -> j
  | Error e -> fail "%s: %s" path e

let compare_files a b =
  let ja = J.to_string ~minify:true (strip (load a)) in
  let jb = J.to_string ~minify:true (strip (load b)) in
  if String.equal ja jb then print_endline "serve_probe: compare ok"
  else begin
    let n = min (String.length ja) (String.length jb) in
    let i = ref 0 in
    while !i < n && ja.[!i] = jb.[!i] do incr i done;
    fail "%s and %s differ beyond the volatile members (byte %d: %s vs %s)" a b
      !i
      (String.sub ja !i (min 40 (String.length ja - !i)))
      (String.sub jb !i (min 40 (String.length jb - !i)))
  end

let () =
  match Array.to_list Sys.argv with
  | [ _; "abuse"; socket ] -> abuse socket
  | [ _; "compare"; a; b ] -> compare_files a b
  | _ ->
      prerr_endline "usage: serve_probe abuse SOCKET | compare A.json B.json";
      exit 2
