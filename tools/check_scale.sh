#!/bin/sh
# Smoke gate for the streamed + sampled simulation paths: run the
# bench harness's scale-sweep micro on the quick subset and assert the
# sampled runs stay inside their error budget.  The sweep itself
# exits nonzero if any streamed run is not bit-identical to the exact
# array-backed run, so a green gate certifies both halves of the
# tentpole: generators are exact, sampling is bounded.
# Wired into `dune runtest` from tools/dune; also runnable by hand:
#
#   dune build && sh tools/check_scale.sh
#
# Args (all optional): BENCH_EXE SCALE_CHECK_EXE
set -e
BENCH=${1:-./_build/default/bench/main.exe}
CHECK=${2:-./_build/default/tools/scale_check.exe}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Quick subset at sweep scale 16 only (4 kernels x {Base, Combined},
# machine capacity divisor 16, sample factor clamped per machine) —
# larger scales are EXPERIMENTS.md material, too slow for a test
# gate.  Exits nonzero on any streamed-vs-exact mismatch.
"$BENCH" scale-sweep --quick --json 16 > "$tmp/sweep.json"

# Sampled cycle-error geomean must stay under 5% on the quick subset
# (measured ~2%; the bound leaves noise headroom but catches
# estimator regressions).
"$CHECK" --max-geomean 0.05 "$tmp/sweep.json"

echo "check_scale: ok"
