#!/bin/sh
# Run `ctamap run --json` over every example program and validate that
# each emitted report parses as JSON (with the repo's own parser, via
# tools/json_check.exe).  Wired into `dune runtest` from tools/dune;
# also runnable by hand from the repo root:
#
#   dune build && sh tools/check_report.sh
#
# Args (all optional): CTAMAP_EXE JSON_CHECK_EXE PROGRAM_DIR
set -e
CTAMAP=${1:-./_build/default/bin/ctamap.exe}
JSON_CHECK=${2:-./_build/default/tools/json_check.exe}
DIR=${3:-examples/programs}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
count=0
for f in "$DIR"/*.ctam; do
  [ -e "$f" ] || { echo "check_report: no .ctam files in $DIR" >&2; exit 1; }
  out="$tmp/$(basename "$f" .ctam).json"
  "$CTAMAP" run "$f" --json "$out" > /dev/null
  "$JSON_CHECK" "$out" > /dev/null
  count=$((count + 1))
done
echo "check_report: $count example report(s) valid"
