#!/bin/sh
# Exercise the timeline tracing layer end to end:
#   1. `ctamap trace` over an example program and a built-in workload;
#      each trace must parse as JSON (tools/json_check.exe) and satisfy
#      the Chrome trace-event invariants (tools/trace_check.exe:
#      ph/ts/pid/tid/name fields, non-negative durs, per-track monotone
#      timestamps, at least one span and one counter).
#   2. `ctamap report diff` of a report against itself exits zero, and
#      against a copy with cycles inflated ~10x exits non-zero.
# Wired into `dune runtest` from tools/dune; also runnable by hand:
#
#   dune build && sh tools/check_trace.sh
#
# Args (all optional): CTAMAP_EXE JSON_CHECK_EXE TRACE_CHECK_EXE PROGRAM_DIR
set -e
CTAMAP=${1:-./_build/default/bin/ctamap.exe}
JSON_CHECK=${2:-./_build/default/tools/json_check.exe}
TRACE_CHECK=${3:-./_build/default/tools/trace_check.exe}
DIR=${4:-examples/programs}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$CTAMAP" trace "$DIR/fig5.ctam" -m dunnington -s topology \
  -o "$tmp/fig5_trace.json" --window 512 > /dev/null
"$JSON_CHECK" "$tmp/fig5_trace.json" > /dev/null
"$TRACE_CHECK" "$tmp/fig5_trace.json" > /dev/null

"$CTAMAP" trace sp -m dunnington --scale 64 -s topology \
  -o "$tmp/sp_trace.json" --window 2048 --heatmap > /dev/null
"$JSON_CHECK" "$tmp/sp_trace.json" > /dev/null
"$TRACE_CHECK" "$tmp/sp_trace.json" > /dev/null

# report diff: identical inputs -> exit 0, no regressions
"$CTAMAP" run sp --scale 64 -s topology --json "$tmp/a.json" > /dev/null
if ! "$CTAMAP" report diff "$tmp/a.json" "$tmp/a.json" > /dev/null; then
  echo "check_trace: self-diff should exit zero" >&2
  exit 1
fi

# inflate every cycles count ~10x: must be flagged as a regression
sed -E 's/("cycles": )([0-9]+)/\1\29/' "$tmp/a.json" > "$tmp/b.json"
if "$CTAMAP" report diff "$tmp/a.json" "$tmp/b.json" > /dev/null 2>&1; then
  echo "check_trace: inflated cycles should exit non-zero" >&2
  exit 1
fi

echo "check_trace: traces valid, report diff gate works"
