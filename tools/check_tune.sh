#!/bin/sh
# End-to-end check of `ctamap tune`: a small budget-capped search must
# (a) produce a valid tune report, (b) be byte-identical between -j 1
# and -j 4 cold runs, (c) perform zero simulations when re-run against
# the warm persistent cache, and (d) emit a --save-params file that
# `ctamap run --params` and `ctamap compare --params` accept.  Wired
# into `dune runtest` from tools/dune; also runnable by hand from the
# repo root:
#
#   dune build && sh tools/check_tune.sh
#
# Args (all optional): CTAMAP_EXE CHECK_TUNE_EXE
set -e
CTAMAP=${1:-./_build/default/bin/ctamap.exe}
CHECK=${2:-./_build/default/tools/check_tune.exe}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

tune_args="cg -m harpertown --scale 64 --strategy grid --budget 6"

# Two cold runs, serial vs parallel, separate caches: the reports must
# be byte-identical (determinism is independent of the job count).
"$CTAMAP" tune $tune_args -j 1 --cache "$tmp/c1" --json "$tmp/r1.json" \
  --save-params "$tmp/params.json" > /dev/null
"$CTAMAP" tune $tune_args -j 4 --cache "$tmp/c2" --json "$tmp/r2.json" \
  > /dev/null
cmp "$tmp/r1.json" "$tmp/r2.json" || {
  echo "check_tune: -j 1 and -j 4 reports differ" >&2
  exit 1
}
"$CHECK" "$tmp/r1.json"

# Warm re-run against the first cache: every evaluation must be a hit.
"$CTAMAP" tune $tune_args -j 4 --cache "$tmp/c1" --json "$tmp/r3.json" \
  > /dev/null
"$CHECK" --max-sims 0 "$tmp/r3.json"

# The winning-params file drives run and compare.
"$CTAMAP" run cg -m harpertown --scale 64 --params "$tmp/params.json" \
  > /dev/null
"$CTAMAP" compare cg -m harpertown --scale 64 --params "$tmp/params.json" \
  -j 4 > /dev/null

# Flag plumbing: explicit weights are validated with a clean error.
if "$CTAMAP" run cg -m harpertown --scale 64 --alpha=-1 > "$tmp/bad.out" 2>&1
then
  echo "check_tune: negative --alpha was NOT rejected" >&2
  exit 1
fi
grep -q "alpha" "$tmp/bad.out" || {
  echo "check_tune: negative --alpha produced no diagnostic" >&2
  exit 1
}

echo "check_tune: ok"
