(* Validate a Chrome trace-event JSON file produced by `ctamap trace`:
   the required members exist ([traceEvents] non-empty, [version]),
   every event carries [ph]/[ts]/[pid]/[tid]/[name] (plus [dur >= 0]
   for "X" spans), timestamps are non-decreasing within each
   (pid, tid) track, and at least one duration span and one counter
   sample are present.  Used by tools/check_trace.sh under
   `dune runtest`. *)

module J = Ctam_util.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let check_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let j =
    match J.parse s with
    | Ok v -> v
    | Error e -> fail "%s: not JSON: %s" path e
  in
  (match J.member "version" j with
  | Some (J.String _) -> ()
  | _ -> fail "%s: missing \"version\" member" path);
  let events =
    match J.member "traceEvents" j with
    | Some (J.List (_ :: _ as es)) -> es
    | Some (J.List []) -> fail "%s: traceEvents is empty" path
    | _ -> fail "%s: missing \"traceEvents\" list" path
  in
  let last_ts = Hashtbl.create 64 in
  let spans = ref 0 and counters = ref 0 in
  List.iteri
    (fun i ev ->
      let get name =
        match J.member name ev with
        | Some v -> v
        | None -> fail "%s: event %d: missing \"%s\"" path i name
      in
      let ph =
        match get "ph" with
        | J.String p -> p
        | _ -> fail "%s: event %d: \"ph\" not a string" path i
      in
      (match get "name" with
      | J.String _ -> ()
      | _ -> fail "%s: event %d: \"name\" not a string" path i);
      let int_field name =
        match get name with
        | J.Int v -> v
        | _ -> fail "%s: event %d: \"%s\" not an integer" path i name
      in
      let ts = int_field "ts" in
      let pid = int_field "pid" in
      let tid = int_field "tid" in
      if ts < 0 then fail "%s: event %d: negative ts" path i;
      (match ph with
      | "X" ->
          incr spans;
          if int_field "dur" < 0 then
            fail "%s: event %d: negative dur" path i
      | "C" -> incr counters
      | _ -> ());
      (* Metadata events all carry ts 0 and may follow nothing; real
         events must be non-decreasing per (pid, tid) track. *)
      if ph <> "M" then begin
        (match Hashtbl.find_opt last_ts (pid, tid) with
        | Some prev when ts < prev ->
            fail "%s: event %d: ts %d < %d on track (pid %d, tid %d)" path i
              ts prev pid tid
        | _ -> ());
        Hashtbl.replace last_ts (pid, tid) ts
      end)
    events;
  if !spans = 0 then fail "%s: no duration (ph \"X\") events" path;
  if !counters = 0 then fail "%s: no counter (ph \"C\") events" path;
  Printf.printf "trace_check: %s ok (%d events, %d spans, %d counters, %d tracks)\n"
    path (List.length events) !spans !counters (Hashtbl.length last_ts)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then (
    prerr_endline "usage: trace_check TRACE.json...";
    exit 2);
  List.iter check_file args
