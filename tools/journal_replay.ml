(* journal_replay: validator and replayer for the mapping daemon's
   audit journal (tools/check_obs.sh drives it).

   [journal_replay check FILE [--monotone]] validates the JSONL
   schema: every line is one JSON object with the versioned record
   members ([ctam_journal_version] = 1, request id, op, cache outcome,
   status, per-span micros, byte counts, request and response
   documents).  [--monotone] additionally requires request ids to be
   strictly increasing line over line (true for serially-driven
   journals; concurrent workers may interleave append order).

   [journal_replay replay FILE SOCKET] re-issues each journaled
   request against a live daemon and diffs the fresh response against
   the recorded one, modulo the volatile members (wall-clock timings,
   telemetry snapshots, daemon-minted request ids, cache-hit flags,
   embedded traces).  Records whose responses are inherently unstable
   (stats, metrics, slowlog, shutdown) and records without a request
   document (malformed or oversized frames) are skipped, not diffed.
   Exit 0 means every replayed answer matched. *)

module J = Ctam_util.Json

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("journal_replay: " ^ s);
      exit 1)
    fmt

let member name j = match j with J.Obj _ -> J.member name j | _ -> None

let read_lines path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  let rec go acc n =
    match input_line ic with
    | line -> go ((n, line) :: acc) (n + 1)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go [] 1

let parse_record (n, line) =
  match J.parse line with
  | Ok (J.Obj _ as j) -> (n, j)
  | Ok _ -> fail "line %d: record is not a JSON object" n
  | Error e -> fail "line %d: %s" n e

(* --- check mode ------------------------------------------------------- *)

let require_int n name j =
  match member name j with
  | Some (J.Int i) -> i
  | _ -> fail "line %d: missing integer %S" n name

let require_string n name j =
  match member name j with
  | Some (J.String s) -> s
  | _ -> fail "line %d: missing string %S" n name

let check_record (n, j) =
  let version = require_int n "ctam_journal_version" j in
  if version <> 1 then fail "line %d: unknown journal version %d" n version;
  (match member "ts" j with
  | Some (J.Float _) -> ()
  | _ -> fail "line %d: missing number \"ts\"" n);
  let rid = require_int n "request_id" j in
  ignore (require_int n "conn" j);
  ignore (require_string n "op" j);
  (match require_string n "cache" j with
  | "memory" | "disk" | "miss" | "bypass" | "none" -> ()
  | c -> fail "line %d: unknown cache outcome %S" n c);
  (match require_string n "status" j with
  | "ok" | "error" | "timeout" -> ()
  | s -> fail "line %d: unknown status %S" n s);
  ignore (require_int n "total_us" j);
  (match member "spans_us" j with
  | Some (J.Obj spans) ->
      List.iter
        (fun (k, v) ->
          match v with
          | J.Int us when us >= 0 -> ()
          | _ -> fail "line %d: span %S is not a non-negative integer" n k)
        spans
  | _ -> fail "line %d: missing object \"spans_us\"" n);
  ignore (require_int n "bytes_in" j);
  ignore (require_int n "bytes_out" j);
  (match (member "request" j, member "response" j) with
  | Some _, Some _ -> ()
  | _ -> fail "line %d: missing \"request\"/\"response\" members" n);
  (n, rid)

let check ~monotone path =
  let records = List.map parse_record (read_lines path) in
  let ids = List.map check_record records in
  if monotone then
    ignore
      (List.fold_left
         (fun prev (n, rid) ->
           (match prev with
           | Some p when rid <= p ->
               fail "line %d: request id %d not above predecessor %d" n rid p
           | _ -> ());
           Some rid)
         None ids);
  Printf.printf "journal_replay: check ok (%d records)\n" (List.length records)

(* --- replay mode ------------------------------------------------------ *)

(* Ops whose responses describe the daemon's own mutable state — a
   replay can never expect them to match. *)
let unstable_ops = [ "stats"; "metrics"; "slowlog"; "shutdown" ]

(* Response members that legitimately differ between the original
   service and the replay. *)
let volatile =
  [ "timings_seconds"; "telemetry"; "request_id"; "cached"; "ts"; "trace" ]

let rec strip j =
  match j with
  | J.Obj members ->
      J.Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k volatile then None else Some (k, strip v))
           members)
  | J.List l -> J.List (List.map strip l)
  | _ -> j

let replay path socket =
  let records = List.map parse_record (read_lines path) in
  let replayed = ref 0 and skipped = ref 0 in
  List.iter
    (fun (n, j) ->
      let op = match member "op" j with Some (J.String s) -> s | _ -> "?" in
      let request = Option.value ~default:J.Null (member "request" j) in
      let recorded = Option.value ~default:J.Null (member "response" j) in
      if List.mem op unstable_ops || request = J.Null then incr skipped
      else
        match Ctam_serve.Client.one_shot ~socket request with
        | Error e -> fail "line %d (%s): replay failed: %s" n op e
        | Ok fresh ->
            let a = J.to_string ~minify:true (strip recorded) in
            let b = J.to_string ~minify:true (strip fresh) in
            if not (String.equal a b) then begin
              let m = min (String.length a) (String.length b) in
              let i = ref 0 in
              while !i < m && a.[!i] = b.[!i] do
                incr i
              done;
              fail
                "line %d (%s): replayed answer differs beyond the volatile \
                 members (byte %d: %s vs %s)"
                n op !i
                (String.sub a !i (min 40 (String.length a - !i)))
                (String.sub b !i (min 40 (String.length b - !i)))
            end;
            incr replayed)
    records;
  Printf.printf "journal_replay: replay ok (%d replayed, %d skipped)\n"
    !replayed !skipped

let () =
  match Array.to_list Sys.argv with
  | [ _; "check"; path ] -> check ~monotone:false path
  | [ _; "check"; path; "--monotone" ] -> check ~monotone:true path
  | [ _; "replay"; path; socket ] -> replay path socket
  | _ ->
      prerr_endline
        "usage: journal_replay check FILE [--monotone] | journal_replay \
         replay FILE SOCKET";
      exit 2
