#!/bin/sh
# End-to-end check of the mapping daemon (`ctamap serve`): a served
# answer must equal the one-shot answer modulo volatile report members,
# a repeated request must come from the plan cache byte-identically,
# hostile input (garbage/oversized/malformed frames, mid-frame
# disconnects, bad requests) must get structured error replies with the
# daemon still alive, a corrupt on-disk cache entry must only cost a
# recompute, and shutdown must be clean (socket removed, exit 0).
# Wired into `dune runtest` from tools/dune; also runnable by hand from
# the repo root:
#
#   dune build && sh tools/check_serve.sh
#
# Args (all optional): CTAMAP_EXE SERVE_PROBE_EXE
set -e
CTAMAP=${1:-./_build/default/bin/ctamap.exe}
PROBE=${2:-./_build/default/tools/serve_probe.exe}
tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2> /dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT

sock="$tmp/daemon.sock"
run_args="cg -m harpertown --scale 64"

start_daemon() {
  "$CTAMAP" serve --socket "$sock" --workers 2 --cache-dir "$tmp/cache" \
    2> "$tmp/serve.log" &
  pid=$!
  i=0
  while [ ! -S "$sock" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "check_serve: daemon never bound $sock" >&2
                          cat "$tmp/serve.log" >&2; exit 1; }
    sleep 0.1
  done
}

stop_daemon() {
  "$CTAMAP" client --socket "$sock" --op shutdown > /dev/null
  wait "$pid" || { echo "check_serve: daemon exited non-zero" >&2; exit 1; }
  pid=""
  [ -S "$sock" ] && { echo "check_serve: socket left behind" >&2; exit 1; }
  true
}

start_daemon

# A served run must be the one-shot run, modulo wall clocks.
"$CTAMAP" run $run_args --json "$tmp/oneshot.json" > /dev/null
"$CTAMAP" client --socket "$sock" --op run $run_args > "$tmp/served.json"
"$PROBE" compare "$tmp/oneshot.json" "$tmp/served.json" > /dev/null

# The repeat must be answered from the plan cache, byte-identically.
"$CTAMAP" client --socket "$sock" --op run $run_args > "$tmp/served2.json"
cmp "$tmp/served.json" "$tmp/served2.json" || {
  echo "check_serve: cached reply differs from the computed one" >&2
  exit 1
}
"$CTAMAP" client --socket "$sock" --op stats > "$tmp/stats.json"
grep -q '"cached": [1-9]' "$tmp/stats.json" || {
  echo "check_serve: stats report no cache hit after a repeat" >&2
  exit 1
}

# Hostile input: structured errors, daemon stays up (asserted by the
# probe's pings and by the shutdown below succeeding).
"$PROBE" abuse "$sock" > /dev/null

# Restart over a corrupted persistent cache: every entry replaced by
# valid-JSON-but-not-an-entry garbage.  The daemon must recompute (not
# crash), and the answer must still match the one-shot report.
stop_daemon
for f in "$tmp"/cache/ctam-plan-*.json; do
  [ -e "$f" ] || { echo "check_serve: no persistent entries written" >&2
                   exit 1; }
  echo '[]' > "$f"
done
start_daemon
"$CTAMAP" client --socket "$sock" --op run $run_args > "$tmp/served3.json"
"$PROBE" compare "$tmp/oneshot.json" "$tmp/served3.json" > /dev/null
"$CTAMAP" client --socket "$sock" --op ping > /dev/null

# Load-generator plumbing: a small cached burst with zero errors.
"$CTAMAP" client --socket "$sock" --op run $run_args --load 20 \
  --concurrency 2 --json > "$tmp/load.json"
grep -q '"errors":0' "$tmp/load.json" || {
  echo "check_serve: load burst reported errors" >&2
  exit 1
}

stop_daemon
echo "check_serve: ok"
