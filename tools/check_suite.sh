#!/bin/sh
# Run the mapping legality checker (`ctamap check`) over a fast subset
# of the workload suite x machine topologies, and prove the checker is
# alive by asserting that both --inject corruption modes are rejected
# with a non-zero exit and a readable diagnostic.  Wired into
# `dune runtest` from tools/dune; also runnable by hand from the repo
# root:
#
#   dune build && sh tools/check_suite.sh
#
# The full-suite sweep (12 workloads x 3 machines x all schemes) runs
# in run_bench_incremental.sh; here one dependence-free and one
# dependence-carrying workload per machine keeps runtest fast.
#
# Args (all optional): CTAMAP_EXE
set -e
CTAMAP=${1:-./_build/default/bin/ctamap.exe}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

count=0
for m in harpertown nehalem dunnington; do
  for w in cg sp; do
    "$CTAMAP" check "$w" -m "$m" --scale 64 --all-schemes > /dev/null
    count=$((count + 1))
  done
done

# Negative modes: the corrupted mapping must fail the check (non-zero
# exit) and say why.
for inj in bad-coverage bad-order; do
  if "$CTAMAP" check sp -m dunnington --scale 64 --inject "$inj" \
      > "$tmp/inj.out" 2>&1; then
    echo "check_suite: --inject $inj was NOT detected" >&2
    exit 1
  fi
  grep -q "mapping INVALID" "$tmp/inj.out" || {
    echo "check_suite: --inject $inj produced no diagnostic" >&2
    exit 1
  }
done

echo "check_suite: $count workload/machine check(s) clean, 2 injections caught"
