(* Validate that each argument file parses as JSON (one document per
   file, or one per line when the file looks like JSON Lines).  Exits
   nonzero on the first failure; used by tools/check_report.sh and as a
   standalone linter for bench_output.json. *)

let check_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  let fail msg =
    Printf.eprintf "%s: %s\n" path msg;
    exit 1
  in
  let check_doc what doc =
    match Ctam_util.Json.parse doc with
    | Ok _ -> ()
    | Error e -> fail (Printf.sprintf "%s: %s" what e)
  in
  match Ctam_util.Json.parse s with
  | Ok _ -> ()
  | Error whole_err -> (
      (* Maybe JSON Lines: every non-empty line must parse on its own. *)
      let lines =
        String.split_on_char '\n' s
        |> List.filter (fun l -> String.trim l <> "")
      in
      match lines with
      | _ :: _ :: _ ->
          List.iteri
            (fun i l -> check_doc (Printf.sprintf "line %d" (i + 1)) l)
            lines
      | _ -> fail whole_err)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then (
    prerr_endline "usage: json_check FILE...";
    exit 2);
  List.iter check_file args;
  Printf.printf "json_check: %d file(s) ok\n" (List.length args)
