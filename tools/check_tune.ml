(* Validate a `ctamap tune --json` report: the ctam_tune_version
   marker, required members, and internal consistency — the best
   outcome never loses to the baseline, the tuned_vs_default ratio
   matches the two cycle counts, the baseline is the first trial.
   With --max-sims N, additionally assert the run performed at most N
   simulations (N=0 proves a fully warm persistent cache).  Used by
   tools/check_tune.sh under `dune runtest`. *)

module J = Ctam_util.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("check_tune: " ^ m);
      exit 1)
    fmt

let member name j =
  match J.member name j with
  | Some v -> v
  | None -> fail "member '%s' missing" name

let int_member name j =
  match member name j with
  | J.Int i -> i
  | _ -> fail "member '%s' is not an int" name

let str_member name j =
  match member name j with
  | J.String s -> s
  | _ -> fail "member '%s' is not a string" name

let outcome_of trial_name j =
  let o = member "outcome" j in
  let cycles = int_member "cycles" o in
  let mem = int_member "mem_accesses" o in
  if cycles < 0 || mem < 0 then fail "%s has negative counts" trial_name;
  (cycles, mem)

let check_report ~max_sims path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let j =
    match J.parse s with
    | Ok j -> j
    | Error e -> fail "%s: %s" path e
  in
  (match J.member "ctam_tune_version" j with
  | Some (J.Int 1) -> ()
  | Some _ -> fail "unsupported ctam_tune_version"
  | None -> fail "not a tune report (no ctam_tune_version)");
  let program = str_member "program" j in
  let machine = str_member "machine" j in
  let strategy = str_member "strategy" j in
  if not (List.mem strategy [ "grid"; "descent"; "halving" ]) then
    fail "unknown strategy '%s'" strategy;
  let baseline = member "baseline" j in
  let best = member "best" j in
  let base_cycles, base_mem = outcome_of "baseline" baseline in
  let best_cycles, best_mem = outcome_of "best" best in
  if (best_cycles, best_mem) > (base_cycles, base_mem) then
    fail "best (%d cycles, %d mem) loses to the default (%d cycles, %d mem)"
      best_cycles best_mem base_cycles base_mem;
  (match member "tuned_vs_default" j with
  | J.Float r ->
      let expect =
        if base_cycles = 0 then 1.0
        else float_of_int best_cycles /. float_of_int base_cycles
      in
      if Float.abs (r -. expect) > 1e-9 then
        fail "tuned_vs_default %g does not match cycles ratio %g" r expect
  | _ -> fail "tuned_vs_default is not a float");
  let sims = int_member "simulations" j in
  let hits = int_member "cache_hits" j in
  if sims < 0 || hits < 0 then fail "negative counters";
  let trials =
    match member "trials" j with
    | J.List l -> l
    | _ -> fail "trials is not a list"
  in
  if trials = [] then fail "no trials recorded";
  (match trials with
  | first :: _ ->
      if member "point" first <> member "point" baseline then
        fail "the first trial is not the baseline"
  | [] -> ());
  List.iter (fun t -> ignore (outcome_of "trial" t)) trials;
  (match max_sims with
  | Some n when sims > n ->
      fail "%d simulation(s), expected at most %d (cache cold?)" sims n
  | _ -> ());
  Printf.printf "check_tune: %s ok (%s on %s, %s: %d trials, %d sims, %d hits)\n"
    path program machine strategy (List.length trials) sims hits

let () =
  let max_sims = ref None in
  let files = ref [] in
  let rec parse = function
    | "--max-sims" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> max_sims := Some n
        | _ -> fail "--max-sims needs a non-negative integer");
        parse rest
    | f :: rest ->
        files := f :: !files;
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !files = [] then (
    prerr_endline "usage: check_tune [--max-sims N] REPORT.json...";
    exit 2);
  List.iter (check_report ~max_sims:!max_sims) (List.rev !files)
