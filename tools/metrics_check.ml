(* Validate a `--metrics-out` snapshot (the Profile.snapshot_json
   schema): version stamps, the gc member, and every metric family —
   known kind, labels shaped as string pairs, counters non-negative,
   histogram buckets cumulative and ending at a "+Inf" bound whose
   count equals the series count.  With `--require NAME`, additionally
   assert that family NAME exists and has at least one series with a
   nonzero value / observation — how check_metrics.sh proves the
   instrumented seams actually fired.  With `--prom FILE`, sanity-check
   a Prometheus text exposition: every sample line parses and no
   series is exposed twice.  Used under `dune runtest`. *)

module J = Ctam_util.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("metrics_check: " ^ m);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let member name j =
  match J.member name j with
  | Some v -> v
  | None -> fail "member '%s' missing" name

let str_member name j =
  match member name j with
  | J.String s -> s
  | _ -> fail "member '%s' is not a string" name

let num name = function
  | J.Int i -> float_of_int i
  | J.Float f -> f
  | _ -> fail "member '%s' is not a number" name

(* --- snapshot JSON ---------------------------------------------------- *)

(* A family's series all carry the same value shape; returns true when
   any series is "live" (nonzero counter/gauge, nonempty histogram). *)
let check_family j =
  let name = str_member "name" j in
  let kind = str_member "kind" j in
  let series =
    match member "series" j with
    | J.List l -> l
    | _ -> fail "%s: series is not a list" name
  in
  let check_labels s =
    match J.member "labels" s with
    | None -> ()
    | Some (J.Obj pairs) ->
        List.iter
          (function
            | _, J.String _ -> ()
            | k, _ -> fail "%s: label '%s' is not a string" name k)
          pairs
    | Some _ -> fail "%s: labels is not an object" name
  in
  let live_series s =
    check_labels s;
    match kind with
    | "counter" -> (
        match member "value" s with
        | J.Int v ->
            if v < 0 then fail "%s: negative counter %d" name v;
            v > 0
        | _ -> fail "%s: counter value is not an int" name)
    | "gauge" -> num "value" (member "value" s) <> 0.
    | "histogram" ->
        let count =
          match member "count" s with
          | J.Int c when c >= 0 -> c
          | J.Int c -> fail "%s: negative count %d" name c
          | _ -> fail "%s: histogram count is not an int" name
        in
        ignore (num "sum" (member "sum" s));
        let buckets =
          match member "buckets" s with
          | J.List l -> l
          | _ -> fail "%s: buckets is not a list" name
        in
        if buckets = [] then fail "%s: empty bucket list" name;
        let prev = ref 0 in
        let last_le = ref J.Null in
        List.iter
          (fun b ->
            let c =
              match member "count" b with
              | J.Int c -> c
              | _ -> fail "%s: bucket count is not an int" name
            in
            if c < !prev then
              fail "%s: bucket counts not cumulative (%d after %d)" name c
                !prev;
            prev := c;
            last_le := member "le" b)
          buckets;
        if !last_le <> J.String "+Inf" then
          fail "%s: last bucket bound is not +Inf" name;
        if !prev <> count then
          fail "%s: +Inf bucket count %d does not equal count %d" name !prev
            count;
        count > 0
    | k -> fail "%s: unknown kind '%s'" name k
  in
  let live = List.exists live_series series in
  (name, live)

let check_snapshot ~require path =
  let j =
    match J.parse (read_file path) with
    | Ok j -> j
    | Error e -> fail "%s: %s" path e
  in
  (match J.member "ctam_metrics_version" j with
  | Some (J.Int 1) -> ()
  | Some _ -> fail "%s: unsupported ctam_metrics_version" path
  | None -> fail "%s: not a metrics snapshot (no ctam_metrics_version)" path);
  ignore (str_member "version" j);
  let gc = member "gc" j in
  if num "minor_words" (member "minor_words" gc) < 0. then
    fail "%s: negative gc minor_words" path;
  let fams =
    match member "metrics" j with
    | J.List l -> l
    | _ -> fail "%s: metrics is not a list" path
  in
  let checked = List.map check_family fams in
  let names = List.map fst checked in
  if List.sort compare names <> names then
    fail "%s: families are not sorted by name" path;
  List.iter
    (fun r ->
      match List.assoc_opt r checked with
      | None -> fail "%s: required family '%s' missing" path r
      | Some false -> fail "%s: required family '%s' has no nonzero series" path r
      | Some true -> ())
    require;
  Printf.printf "metrics_check: %s ok (%d families%s)\n" path
    (List.length checked)
    (match require with
    | [] -> ""
    | rs -> Printf.sprintf ", %d required nonzero" (List.length rs))

(* --- Prometheus text exposition --------------------------------------- *)

(* One sample line: NAME{labels} VALUE — split off the value (after the
   last space outside braces is overkill; label values never contain a
   raw newline, and the renderer never puts a space after the closing
   brace except before the value). *)
let check_prom path =
  let seen = Hashtbl.create 64 in
  let lines = String.split_on_char '\n' (read_file path) in
  let samples = ref 0 in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if line = "" then ()
      else if line.[0] = '#' then begin
        if
          not
            (String.length line > 2
            && (String.sub line 0 7 = "# HELP "
               || String.sub line 0 7 = "# TYPE "))
        then fail "%s:%d: unknown comment form" path ln
      end
      else
        match String.rindex_opt line ' ' with
        | None -> fail "%s:%d: no value on sample line" path ln
        | Some sp ->
            let series = String.sub line 0 sp in
            let value =
              String.sub line (sp + 1) (String.length line - sp - 1)
            in
            (match value with
            | "+Inf" | "-Inf" | "NaN" -> ()
            | v when float_of_string_opt v <> None -> ()
            | v -> fail "%s:%d: unparseable value '%s'" path ln v);
            if Hashtbl.mem seen series then
              fail "%s:%d: duplicate series %s" path ln series;
            Hashtbl.add seen series ();
            incr samples)
    lines;
  if !samples = 0 then fail "%s: no samples" path;
  Printf.printf "metrics_check: %s ok (%d samples)\n" path !samples

let () =
  let require = ref [] in
  let proms = ref [] in
  let files = ref [] in
  let rec parse = function
    | "--require" :: name :: rest ->
        require := name :: !require;
        parse rest
    | [ "--require" ] -> fail "--require needs a metric family name"
    | "--prom" :: f :: rest ->
        proms := f :: !proms;
        parse rest
    | [ "--prom" ] -> fail "--prom needs a file"
    | f :: rest ->
        files := f :: !files;
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !files = [] && !proms = [] then (
    prerr_endline
      "usage: metrics_check [--require FAMILY]... SNAPSHOT.json... [--prom \
       FILE]...";
    exit 2);
  List.iter (check_snapshot ~require:(List.rev !require)) (List.rev !files);
  List.iter check_prom (List.rev !proms)
