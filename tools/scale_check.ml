(* Validate a `bench/main.exe scale-sweep --json` emission (JSON-lines,
   one row per machine × scale × kernel × scheme): every scale_sweep
   row must carry positive exact cycle counts and speedups, and the
   geometric mean of the sampled-run cycle errors must stay under the
   bound (default 5%, override with --max-geomean).  The sweep itself
   already asserts the streamed path bit-identical to the exact one
   (it exits nonzero on mismatch), so this checker gates the
   *approximate* half: set sampling staying inside its error budget.
   Used by tools/check_scale.sh under `dune runtest`. *)

module J = Ctam_util.Json

let fail fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("scale_check: " ^ m);
      exit 1)
    fmt

let num name j =
  match J.member name j with
  | Some (J.Int i) -> float_of_int i
  | Some (J.Float f) -> f
  | _ -> fail "row missing numeric member '%s'" name

let () =
  let max_geomean = ref 0.05 in
  let file = ref None in
  let rec parse = function
    | [] -> ()
    | "--max-geomean" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0. -> max_geomean := f
        | _ -> fail "--max-geomean: bad value %S" v);
        parse rest
    | f :: rest ->
        (match !file with
        | None -> file := Some f
        | Some _ -> fail "usage: scale_check [--max-geomean F] FILE");
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> fail "no input file" in
  let ic = open_in file in
  let rows = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then
         match J.parse line with
         | Ok j
           when J.member "experiment" j = Some (J.String "scale_sweep") ->
             rows := j :: !rows
         | Ok _ -> () (* other experiments share the JSON-lines file *)
         | Error e -> fail "unparseable line: %s" e
     done
   with End_of_file -> close_in ic);
  let rows = List.rev !rows in
  if rows = [] then fail "%s has no scale_sweep rows" file;
  let log_sum = ref 0. in
  List.iter
    (fun row ->
      let label =
        match (J.member "kernel" row, J.member "scale" row) with
        | Some (J.String k), Some (J.Int s) -> Printf.sprintf "%s@%d" k s
        | _ -> "?"
      in
      if num "cycles_exact" row <= 0. then fail "%s: no exact cycles" label;
      if num "cycles_sampled" row <= 0. then fail "%s: no sampled cycles" label;
      if num "sim_speedup" row <= 0. then fail "%s: no speedup" label;
      let err = num "rel_err_cycles" row in
      if err < 0. then fail "%s: negative error" label;
      (* Floor exact rows well below the bound so a run of zero errors
         still yields a finite, passing geomean. *)
      log_sum := !log_sum +. log (max err 1e-6))
    rows;
  let geomean = exp (!log_sum /. float_of_int (List.length rows)) in
  if geomean > !max_geomean then
    fail "sampled-cycle error geomean %.4f exceeds %.4f over %d rows" geomean
      !max_geomean (List.length rows);
  Printf.printf "scale_check: %s ok (%d rows, error geomean %.4f <= %.4f)\n"
    file (List.length rows) geomean !max_geomean
